#include "scenario.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "mem/buddy_allocator.hh"
#include "mem/fragmenter.hh"

namespace atlb
{

const char *
scenarioName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Demand: return "demand";
      case ScenarioKind::Eager: return "eager";
      case ScenarioKind::LowContig: return "low";
      case ScenarioKind::MedContig: return "medium";
      case ScenarioKind::HighContig: return "high";
      case ScenarioKind::MaxContig: return "max";
    }
    ATLB_PANIC("unknown scenario kind");
}

ScenarioKind
scenarioFromName(const std::string &name)
{
    for (const ScenarioKind kind : allScenarios)
        if (name == scenarioName(kind))
            return kind;
    ATLB_FATAL("unknown scenario '{}'", name);
}

namespace
{

/**
 * Append chunks with sizes uniform in [lo, hi] pages to @p map,
 * starting at @p vpn / @p ppn cursors (advanced in place). Chunks of
 * >= 512 pages are placed with physical base congruent to the virtual
 * base mod 512, so THP-sized pieces remain promotable; a >= 1 page
 * guard gap between chunks prevents accidental physical adjacency
 * (which would merge chunks and inflate contiguity beyond the
 * requested range).
 */
void
appendUniformChunks(MemoryMap &map, Rng &rng, Vpn &vpn, Ppn &ppn,
                    std::uint64_t pages, std::uint64_t lo,
                    std::uint64_t hi)
{
    ATLB_ASSERT(lo >= 1 && lo <= hi, "bad synthetic chunk range");
    std::uint64_t remaining = pages;
    while (remaining > 0) {
        std::uint64_t size = std::min(rng.nextRange(lo, hi), remaining);
        // Guard gap, then re-align for THP when the chunk can hold one.
        ppn += 1 + rng.nextBounded(7);
        if (size >= hugePages) {
            // Place so that ppn == vpn (mod 512): any 2MB-aligned VA block
            // inside the chunk then has a 2MB-aligned physical base.
            const std::uint64_t want = hugeOffset(vpn);
            ppn = ppn.alignUp(hugePages) + want;
        }
        map.add(vpn, ppn, PageCount{size});
        vpn += size;
        ppn += size;
        remaining -= size;
    }
}

/** Synthetic mapping per paper Table 4: one uniform chunk-size range. */
MemoryMap
buildSynthetic(const ScenarioParams &p, std::uint64_t lo, std::uint64_t hi)
{
    Rng rng(p.seed);
    MemoryMap map;
    Vpn vpn = p.va_base;
    Ppn ppn{hugePages}; // arbitrary non-zero start
    appendUniformChunks(map, rng, vpn, ppn, p.footprint_pages, lo, hi);
    map.finalize();
    return map;
}

/** Maximal contiguity: the whole footprint as one aligned chunk. */
MemoryMap
buildMax(const ScenarioParams &p)
{
    MemoryMap map;
    // Identical 2MB alignment in VA and PA.
    const Ppn ppn = Ppn{hugePages} + hugeOffset(p.va_base);
    map.add(p.va_base, ppn, PageCount{p.footprint_pages});
    map.finalize();
    return map;
}

std::uint64_t
poolPagesFor(const ScenarioParams &p)
{
    if (p.pool_pages)
        return p.pool_pages;
    // Tile the pool in whole max-order blocks, like a fresh zone whose
    // free lists hold only MAX_ORDER chunks; otherwise the seeding
    // scraps at the pool tail masquerade as fragmentation.
    return alignUp(p.footprint_pages * 5 / 2 + 1024,
                   1ULL << BuddyAllocator::defaultMaxOrder);
}

/**
 * Demand paging over a fragmented pool: fault pages in VA order. At each
 * 2MB-aligned boundary with >= 512 pages left, first try an order-9
 * allocation (the Linux THP fault path); fall back to a single frame.
 * Optional churn lets a background job steal frames between faults.
 */
MemoryMap
buildDemand(const ScenarioParams &p, std::uint64_t mean_free_run)
{
    Rng rng(p.seed);
    BuddyAllocator buddy(poolPagesFor(p));
    Fragmenter frag(buddy, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = mean_free_run;
    profile.tail_run_pages = p.map_tail_run_pages;
    profile.tail_fraction = p.map_tail_fraction;
    profile.max_pinned_fraction = 0.45;
    frag.apply(profile);

    MemoryMap map;
    Vpn vpn = p.va_base;
    std::uint64_t remaining = p.footprint_pages;
    // Churn allocations pin frames for the scenario's lifetime; they are
    // conceptually owned by other processes.
    std::vector<std::pair<Ppn, unsigned>> churn_blocks;

    while (remaining > 0) {
        std::uint64_t got = 0;
        if (vpn.isAligned(hugePages) && remaining >= hugePages) {
            const Ppn base = buddy.allocate(hugeShift);
            if (base != invalidPpn) {
                map.add(vpn, base, PageCount{hugePages});
                got = hugePages;
            }
        }
        if (got == 0) {
            const Ppn base = buddy.allocate(0);
            ATLB_ASSERT(base != invalidPpn,
                        "physical pool exhausted during demand paging");
            map.add(vpn, base, PageCount{1});
            got = 1;
        }
        vpn += got;
        remaining -= got;

        if (p.demand_churn > 0.0 && rng.nextBool(p.demand_churn)) {
            const unsigned order = static_cast<unsigned>(rng.nextBounded(4));
            const Ppn stolen = buddy.allocate(order);
            if (stolen != invalidPpn)
                churn_blocks.emplace_back(stolen, order);
        }
    }
    for (const auto &[base, order] : churn_blocks)
        buddy.free(base, order);
    map.finalize();
    return map;
}

/**
 * Eager paging: the whole region is allocated at request time in maximal
 * buddy blocks. Block order is capped by the VA cursor's own alignment,
 * which keeps blocks naturally aligned in both spaces (so 2MB pieces stay
 * THP-promotable) and mirrors how an eager allocator walks the region.
 */
MemoryMap
buildEager(const ScenarioParams &p, std::uint64_t mean_free_run)
{
    Rng rng(p.seed);
    BuddyAllocator buddy(poolPagesFor(p));
    Fragmenter frag(buddy, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = mean_free_run;
    profile.tail_run_pages = p.map_tail_run_pages;
    profile.tail_fraction = p.map_tail_fraction;
    profile.max_pinned_fraction = 0.45;
    frag.apply(profile);

    MemoryMap map;
    Vpn vpn = p.va_base;
    std::uint64_t remaining = p.footprint_pages;
    while (remaining > 0) {
        const unsigned va_align = static_cast<unsigned>(
            std::min<std::uint64_t>(std::countr_zero(vpn.raw() | (1ULL << 40)),
                                    buddy.maxOrder()));
        const unsigned fit = static_cast<unsigned>(
            std::min<std::uint64_t>(floorLog2(remaining), va_align));
        unsigned got_order = 0;
        const Ppn base = buddy.allocateLargest(fit, got_order);
        ATLB_ASSERT(base != invalidPpn,
                    "physical pool exhausted during eager paging");
        map.add(vpn, base, PageCount{1ULL << got_order});
        vpn += 1ULL << got_order;
        remaining -= 1ULL << got_order;
    }
    map.finalize();
    return map;
}

} // namespace

MemoryMap
buildScenario(ScenarioKind kind, const ScenarioParams &params)
{
    ATLB_ASSERT(params.footprint_pages > 0, "empty footprint");
    ATLB_ASSERT(params.va_base.isAligned(hugePages),
                "va_base must be 2MB aligned");
    switch (kind) {
      case ScenarioKind::Demand:
        return buildDemand(params, params.demand_run_pages);
      case ScenarioKind::Eager:
        return buildEager(params, params.eager_run_pages);
      case ScenarioKind::LowContig:
        return buildSynthetic(params, 1, 16);
      case ScenarioKind::MedContig:
        return buildSynthetic(params, 1, 512);
      case ScenarioKind::HighContig:
        return buildSynthetic(params, 512, 65536);
      case ScenarioKind::MaxContig:
        return buildMax(params);
    }
    ATLB_PANIC("unknown scenario kind");
}

MemoryMap
buildDemandWithPressure(const ScenarioParams &params,
                        std::uint64_t mean_free_run_pages)
{
    return buildDemand(params, mean_free_run_pages);
}

MemoryMap
buildSegmentedScenario(const ScenarioParams &params,
                       const std::vector<ScenarioSegment> &segs)
{
    ATLB_ASSERT(!segs.empty(), "segmented scenario needs segments");
    ATLB_ASSERT(params.va_base.isAligned(hugePages),
                "va_base must be 2MB aligned");
    Rng rng(params.seed);
    MemoryMap map;
    Vpn vpn = params.va_base;
    Ppn ppn{hugePages};
    for (const ScenarioSegment &seg : segs) {
        ATLB_ASSERT(seg.pages > 0, "empty scenario segment");
        appendUniformChunks(map, rng, vpn, ppn, seg.pages, seg.chunk_lo,
                            seg.chunk_hi);
        // Align the next segment to a huge-page boundary so segments
        // remain independent for THP purposes (real VMAs start aligned).
        const std::uint64_t slack = vpn.alignUp(hugePages) - vpn;
        if (slack > 0) {
            appendUniformChunks(map, rng, vpn, ppn, slack, 1,
                                std::min<std::uint64_t>(slack, 8));
        }
    }
    map.finalize();
    return map;
}

} // namespace atlb
