#include "region_partitioner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"

namespace atlb
{

namespace
{

/** Working segment: a run of consecutive chunks with similar scale. */
struct Segment
{
    std::size_t first_chunk = 0;
    std::size_t last_chunk = 0; // inclusive
    std::uint64_t pages = 0;
    /** Pages-weighted sum of log2(chunk size), for the mean scale. */
    double scale_sum = 0.0;

    double meanScale() const
    {
        return pages ? scale_sum / static_cast<double>(pages) : 0.0;
    }
};

double
chunkScale(const Chunk &c)
{
    const std::uint64_t capped =
        std::min<std::uint64_t>(c.pages, PageTable::maxContiguity);
    return static_cast<double>(floorLog2(capped));
}

void
addChunk(Segment &seg, std::size_t idx, const Chunk &c)
{
    seg.last_chunk = idx;
    seg.pages += c.pages;
    seg.scale_sum += chunkScale(c) * static_cast<double>(c.pages);
}

} // namespace

RegionPartition
partitionAnchorRegions(const MemoryMap &map,
                       const RegionPartitionConfig &config)
{
    ATLB_ASSERT(map.finalized(), "partitioning an unfinalized map");
    ATLB_ASSERT(config.max_regions >= 1, "need at least one region");

    RegionPartition out;
    out.default_distance = AnchorDist::fromPages(
        selectAnchorDistance(map.contiguityHistogram()).distance);
    const auto &chunks = map.chunks();
    if (chunks.empty())
        return out;

    // Pass 1: segment at big shifts in chunk scale.
    std::vector<Segment> segments;
    Segment cur;
    cur.first_chunk = 0;
    addChunk(cur, 0, chunks[0]);
    for (std::size_t i = 1; i < chunks.size(); ++i) {
        const double shift =
            std::abs(chunkScale(chunks[i]) - cur.meanScale());
        if (shift >= static_cast<double>(config.scale_shift_log2) &&
            cur.pages >= config.min_region_pages) {
            segments.push_back(cur);
            cur = Segment{};
            cur.first_chunk = i;
        }
        addChunk(cur, i, chunks[i]);
    }
    segments.push_back(cur);

    // Pass 2: merge the most-similar adjacent pair until within budget.
    while (segments.size() > config.max_regions) {
        std::size_t best = 0;
        double best_diff = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
            const double diff = std::abs(segments[i].meanScale() -
                                         segments[i + 1].meanScale());
            if (diff < best_diff) {
                best_diff = diff;
                best = i;
            }
        }
        Segment &a = segments[best];
        const Segment &b = segments[best + 1];
        a.last_chunk = b.last_chunk;
        a.pages += b.pages;
        a.scale_sum += b.scale_sum;
        segments.erase(segments.begin() +
                       static_cast<std::ptrdiff_t>(best) + 1);
    }

    // Pass 3: Algorithm 1 per segment.
    out.regions.reserve(segments.size());
    for (const Segment &seg : segments) {
        Histogram hist;
        for (std::size_t i = seg.first_chunk; i <= seg.last_chunk; ++i)
            hist.add(chunks[i].pages);
        AnchorRegion region;
        region.begin = chunks[seg.first_chunk].vpn;
        region.end = chunks[seg.last_chunk].vpnEnd();
        region.distance = AnchorDist::fromPages(
            selectAnchorDistance(hist, config.cost_model).distance);
        out.regions.push_back(region);
    }
    return out;
}

} // namespace atlb
