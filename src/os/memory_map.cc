#include "memory_map.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

void
MemoryMap::add(Vpn vpn, Ppn ppn, PageCount pages)
{
    ATLB_ASSERT(!finalized_, "add() after finalize()");
    ATLB_ASSERT(pages > 0, "empty mapping");
    chunks_.push_back(Chunk{vpn, ppn, pages});
    mapped_pages_ += pages;
}

void
MemoryMap::finalize()
{
    ATLB_ASSERT(!finalized_, "finalize() called twice");
    std::sort(chunks_.begin(), chunks_.end(),
              [](const Chunk &a, const Chunk &b) { return a.vpn < b.vpn; });
    // Verify disjointness and merge VA- and PA-adjacent runs.
    std::vector<Chunk> merged;
    merged.reserve(chunks_.size());
    for (const Chunk &c : chunks_) {
        if (!merged.empty()) {
            Chunk &prev = merged.back();
            ATLB_ASSERT(prev.vpnEnd() <= c.vpn,
                        "overlapping mappings at vpn {}", c.vpn);
            if (prev.vpnEnd() == c.vpn &&
                prev.ppn + prev.pages == c.ppn) {
                prev.pages += c.pages;
                continue;
            }
        }
        merged.push_back(c);
    }
    chunks_ = std::move(merged);
    chunks_.shrink_to_fit();
    finalized_ = true;
}

const Chunk *
MemoryMap::chunkContaining(Vpn vpn) const
{
    ATLB_ASSERT(finalized_, "lookup before finalize()");
    // First chunk with vpnEnd() > vpn; it contains vpn iff vpn >= its vpn.
    const auto it = std::upper_bound(
        chunks_.begin(), chunks_.end(), vpn,
        [](Vpn v, const Chunk &c) { return v < c.vpnEnd(); });
    if (it == chunks_.end() || !it->contains(vpn))
        return nullptr;
    return &*it;
}

Ppn
MemoryMap::translate(Vpn vpn) const
{
    const Chunk *c = chunkContaining(vpn);
    return c ? c->translate(vpn) : invalidPpn;
}

PageCount
MemoryMap::contiguityFrom(Vpn vpn) const
{
    const Chunk *c = chunkContaining(vpn);
    return c ? c->vpnEnd() - vpn : PageCount{};
}

namespace
{

bool
blockEligible(const MemoryMap &map, Vpn vpn, std::uint64_t block_pages)
{
    const Vpn block = vpn.alignDown(block_pages);
    const Chunk *c = map.chunkContaining(block);
    if (!c)
        return false;
    if (c->vpnEnd() < block + block_pages)
        return false;
    // Physical base of the block must be naturally aligned.
    return c->translate(block).isAligned(block_pages);
}

} // namespace

bool
MemoryMap::hugeEligible(Vpn vpn) const
{
    return blockEligible(*this, vpn, hugePages);
}

bool
MemoryMap::giantEligible(Vpn vpn) const
{
    return blockEligible(*this, vpn, giantPages);
}

Histogram
MemoryMap::contiguityHistogram() const
{
    ATLB_ASSERT(finalized_, "histogram before finalize()");
    Histogram h;
    for (const Chunk &c : chunks_)
        h.add(c.pages);
    return h;
}

} // namespace atlb
