#include "page_table.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/memory_map.hh"

namespace atlb
{

/**
 * One 512-ary radix node. Leaf levels use only @c ents; interior levels
 * use @c ents for 2MB leaves (PD level) and @c kids for child nodes.
 */
struct PageTable::Node
{
    std::array<std::uint64_t, fanout> ents{};
    std::array<std::unique_ptr<Node>, fanout> kids{};
};

namespace
{

/** Radix index of @p vpn at @p level (0 = PML4 ... 3 = PT). */
unsigned
levelIndex(Vpn vpn, unsigned level)
{
    return static_cast<unsigned>((vpn.raw() >> (9 * (3 - level))) &
                                 (PageTable::fanout - 1));
}

} // namespace

PageTable::PageTable() : root_(std::make_unique<Node>()), node_count_(1) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable &&) noexcept = default;
PageTable &PageTable::operator=(PageTable &&) noexcept = default;

PageTable::Node *
PageTable::ensurePath(Vpn vpn, unsigned leaf_level)
{
    Node *node = root_.get();
    for (unsigned level = 0; level < leaf_level; ++level) {
        const unsigned idx = levelIndex(vpn, level);
        ATLB_ASSERT(!pte::present(node->ents[idx]) ||
                        !pte::huge(node->ents[idx]),
                    "descending through a huge leaf at vpn {}", vpn);
        if (!node->kids[idx]) {
            node->kids[idx] = std::make_unique<Node>();
            ++node_count_;
        }
        node = node->kids[idx].get();
    }
    return node;
}

const std::uint64_t *
PageTable::findLeaf(Vpn vpn, unsigned leaf_level) const
{
    const Node *node = root_.get();
    for (unsigned level = 0; level < leaf_level; ++level) {
        const unsigned idx = levelIndex(vpn, level);
        if (!node->kids[idx])
            return nullptr;
        node = node->kids[idx].get();
    }
    return &node->ents[levelIndex(vpn, leaf_level)];
}

std::uint64_t *
PageTable::findLeaf(Vpn vpn, unsigned leaf_level)
{
    return const_cast<std::uint64_t *>(
        static_cast<const PageTable *>(this)->findLeaf(vpn, leaf_level));
}

void
PageTable::map4K(Vpn vpn, Ppn ppn)
{
    Node *pt = ensurePath(vpn, 3);
    std::uint64_t &e = pt->ents[levelIndex(vpn, 3)];
    ATLB_ASSERT(!pte::present(e), "vpn {} already mapped", vpn);
    // Preserve ignored bits: a neighbouring anchor may have parked its
    // high contiguity byte here before this page was mapped.
    e = pte::make(ppn) | (e & pte::contigMask);
    ++mapped_4k_;
}

void
PageTable::remap4K(Vpn vpn, Ppn ppn)
{
    std::uint64_t *e = findLeaf(vpn, 3);
    ATLB_ASSERT(e && pte::present(*e) && !pte::huge(*e),
                "remap of vpn {} which is not a 4KB mapping", vpn);
    *e = pte::make(ppn) | (*e & pte::contigMask);
}

void
PageTable::unmap4K(Vpn vpn)
{
    std::uint64_t *e = findLeaf(vpn, 3);
    ATLB_ASSERT(e && pte::present(*e) && !pte::huge(*e),
                "unmap of vpn {} which is not a 4KB mapping", vpn);
    *e = 0;
    --mapped_4k_;
}

void
PageTable::map2M(Vpn vpn, Ppn ppn)
{
    ATLB_ASSERT(vpn.isAligned(hugePages) && ppn.isAligned(hugePages),
                "2MB mapping must be 512-page aligned (vpn {}, ppn {})",
                vpn, ppn);
    Node *pd = ensurePath(vpn, 2);
    const unsigned idx = levelIndex(vpn, 2);
    ATLB_ASSERT(!pd->kids[idx], "2MB leaf over existing PT at vpn {}", vpn);
    std::uint64_t &e = pd->ents[idx];
    ATLB_ASSERT(!pte::present(e), "vpn {} already mapped", vpn);
    e = pte::make(ppn, true);
    ++mapped_2m_;
}

void
PageTable::map1G(Vpn vpn, Ppn ppn)
{
    ATLB_ASSERT(vpn.isAligned(giantPages) && ppn.isAligned(giantPages),
                "1GB mapping must be 2^18-page aligned (vpn {}, ppn {})",
                vpn, ppn);
    Node *pdpt = ensurePath(vpn, 1);
    const unsigned idx = levelIndex(vpn, 1);
    ATLB_ASSERT(!pdpt->kids[idx], "1GB leaf over existing PD at vpn {}",
                vpn);
    std::uint64_t &e = pdpt->ents[idx];
    ATLB_ASSERT(!pte::present(e), "vpn {} already mapped", vpn);
    // A 1GB leaf's frame bits start at bit 30, so pte::make/pfn are
    // exact for naturally aligned frames.
    e = pte::make(ppn, true);
    ++mapped_1g_;
}

WalkResult
PageTable::walk(Vpn vpn) const
{
    WalkResult res;
    const Node *node = root_.get();
    for (unsigned level = 0; level < 3; ++level) {
        const unsigned idx = levelIndex(vpn, level);
        ++res.levels;
        if (level == 1 && pte::present(node->ents[idx]) &&
            pte::huge(node->ents[idx])) {
            res.present = true;
            res.ppn = pte::pfn(node->ents[idx]) + giantOffset(vpn);
            res.size = PageSize::Giant1G;
            return res;
        }
        if (level == 2 && pte::present(node->ents[idx]) &&
            pte::huge(node->ents[idx])) {
            res.present = true;
            res.ppn = pte::hugePfn(node->ents[idx]) + hugeOffset(vpn);
            res.size = PageSize::Huge2M;
            return res;
        }
        if (!node->kids[idx])
            return res;
        node = node->kids[idx].get();
    }
    ++res.levels;
    const std::uint64_t e = node->ents[levelIndex(vpn, 3)];
    if (pte::present(e)) {
        res.present = true;
        res.ppn = pte::pfn(e);
        res.size = PageSize::Base4K;
    }
    return res;
}

void
PageTable::prefetchWalk(Vpn vpn) const
{
    const Node *node = root_.get();
    for (unsigned level = 0; level < 3; ++level) {
        const unsigned idx = levelIndex(vpn, level);
        const std::uint64_t e = node->ents[idx];
        // A huge leaf's PTE is in the line just loaded; done.
        if (pte::present(e) && pte::huge(e))
            return;
        const Node *kid = node->kids[idx].get();
        if (kid == nullptr)
            return;
        if (level == 2) {
            __builtin_prefetch(&kid->ents[levelIndex(vpn, 3)], 0, 2);
            return;
        }
        node = kid;
    }
}

std::uint64_t *
PageTable::findAnchorSlot(Vpn avpn, bool &is_huge)
{
    Node *node = root_.get();
    for (unsigned level = 0; level < 3; ++level) {
        const unsigned idx = levelIndex(avpn, level);
        if (level == 2 && pte::present(node->ents[idx]) &&
            pte::huge(node->ents[idx])) {
            if (!avpn.isAligned(hugePages))
                return nullptr; // inside a huge page, no slot exists
            is_huge = true;
            return &node->ents[idx];
        }
        if (!node->kids[idx])
            return nullptr;
        node = node->kids[idx].get();
    }
    is_huge = false;
    return &node->ents[levelIndex(avpn, 3)];
}

const std::uint64_t *
PageTable::findAnchorSlot(Vpn avpn, bool &is_huge) const
{
    return const_cast<PageTable *>(this)->findAnchorSlot(avpn, is_huge);
}

void
PageTable::setAnchorContiguity(Vpn avpn, std::uint64_t contig,
                               AnchorDist distance)
{
    ATLB_ASSERT(distance.valid() && distance.pages() <= maxContiguity,
                "bad anchor distance {}", distance);
    ATLB_ASSERT(avpn.isAligned(distance.pages()),
                "unaligned anchor vpn {}", avpn);
    ATLB_ASSERT(contig <= std::min(distance.pages(), maxContiguity),
                "contiguity {} exceeds distance {}", contig, distance);

    bool is_huge = false;
    std::uint64_t *e = findAnchorSlot(avpn, is_huge);
    if (contig == 0) {
        if (!e)
            return; // nothing to clear
        if (is_huge) {
            *e = pte::withHugeContigByte(*e, 0);
            *e = pte::withContigByte(*e, 0);
        } else {
            *e = pte::withContigByte(*e, 0);
            if (distance.pages() > 256)
                e[1] = pte::withContigByte(e[1], 0);
        }
        return;
    }
    ATLB_ASSERT(e, "anchor vpn {} has no slot for an anchor", avpn);
    ATLB_ASSERT(pte::present(*e), "anchor vpn {} is not mapped", avpn);
    // Store contig - 1 (paper footnote: value excludes the anchor page so
    // the field's full range is usable).
    const std::uint64_t encoded = contig - 1;
    if (is_huge) {
        // The single PD leaf holds all 16 bits: low byte below the 2MB
        // frame field, high byte in the ignored bits.
        *e = pte::withHugeContigByte(
            *e, static_cast<std::uint8_t>(encoded & 0xff));
        *e = pte::withContigByte(
            *e, static_cast<std::uint8_t>((encoded >> 8) & 0xff));
        return;
    }
    *e = pte::withContigByte(*e, static_cast<std::uint8_t>(encoded & 0xff));
    if (distance.pages() > 256) {
        // distance > 256 implies distance >= 512, so the anchor is the
        // first entry of its cache line; entry index avpn%512 == 0 and the
        // neighbour below is in the same node and the same cache line.
        e[1] = pte::withContigByte(
            e[1], static_cast<std::uint8_t>((encoded >> 8) & 0xff));
    }
}

std::uint64_t
PageTable::anchorContiguity(Vpn avpn, AnchorDist distance) const
{
    bool is_huge = false;
    const std::uint64_t *e = findAnchorSlot(avpn, is_huge);
    if (!e || !pte::present(*e))
        return 0;
    std::uint64_t encoded;
    if (is_huge) {
        encoded = pte::hugeContigByte(*e) |
                  (static_cast<std::uint64_t>(pte::contigByte(*e)) << 8);
        if (encoded == 0)
            return 0; // huge leaf never swept as an anchor
    } else {
        encoded = pte::contigByte(*e);
        if (distance.pages() > 256)
            encoded |=
                static_cast<std::uint64_t>(pte::contigByte(e[1])) << 8;
    }
    return encoded + 1;
}

std::uint64_t
PageTable::sweepAnchors(const MemoryMap &map, AnchorDist distance)
{
    ATLB_ASSERT(distance.valid() && distance.pages() <= maxContiguity,
                "bad anchor distance {}", distance);
    std::uint64_t touched = 0;

    // Clear the previous distance's anchors so stale contiguity bytes
    // cannot alias into the new encoding.
    if (!swept_distance_.none() && swept_distance_ != distance) {
        for (const Chunk &c : map.chunks()) {
            for (Vpn avpn = c.vpn.alignUp(swept_distance_.pages());
                 avpn < c.vpnEnd(); avpn += swept_distance_.pages()) {
                setAnchorContiguity(avpn, 0, swept_distance_);
                ++touched;
            }
        }
    }

    touched += sweepAnchorsRange(map, distance, Vpn{0}, invalidVpn);
    swept_distance_ = distance;
    return touched;
}

std::uint64_t
PageTable::sweepAnchorsRange(const MemoryMap &map, AnchorDist distance,
                             Vpn begin, Vpn end)
{
    ATLB_ASSERT(distance.valid() && distance.pages() <= maxContiguity,
                "bad anchor distance {}", distance);
    std::uint64_t touched = 0;
    for (const Chunk &c : map.chunks()) {
        const Vpn lo = std::max(c.vpn, begin);
        const Vpn hi = std::min(c.vpnEnd(), end);
        if (lo >= hi)
            continue;
        for (Vpn avpn = lo.alignUp(distance.pages()); avpn < hi;
             avpn += distance.pages()) {
            bool is_huge = false;
            const std::uint64_t *e = findAnchorSlot(avpn, is_huge);
            if (!e || !pte::present(*e))
                continue; // inside a huge page (distance < 512): no slot
            if (is_huge && distance.pages() < hugePages) {
                // An anchor covering less than a huge page would only
                // displace the strictly better 2MB translation.
                continue;
            }
            // Contiguity still runs to the chunk end: coverage beyond a
            // region boundary is physically valid, merely unused.
            const std::uint64_t run = c.vpnEnd() - avpn;
            const std::uint64_t contig =
                std::min({run, distance.pages(), maxContiguity});
            setAnchorContiguity(avpn, contig, distance);
            ++touched;
        }
    }
    return touched;
}

} // namespace atlb
