#include "distance_selector.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/types.hh"
#include "os/page_table.hh"

namespace atlb
{

std::vector<std::uint64_t>
candidateDistances()
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t d = 2; d <= PageTable::maxContiguity; d <<= 1)
        out.push_back(d);
    return out;
}

DistanceSelection
selectAnchorDistance(const Histogram &contiguity, DistanceCostModel model)
{
    DistanceSelection sel;
    sel.cost = std::numeric_limits<double>::infinity();

    for (const std::uint64_t d : candidateDistances()) {
        double cost = 0.0;
        for (const auto &[cont, freq] : contiguity.entries()) {
            const double f = static_cast<double>(freq);
            if (model == DistanceCostModel::CoverageAware) {
                // Expected uncovered prefix for a randomly placed chunk;
                // the tail is covered by its (partial) last anchor. In a
                // THP-capable chunk the prefix itself is mostly served
                // by 2MB entries, leaving only a sub-512-page sliver of
                // 4KB entries.
                const std::uint64_t prefix = std::min<std::uint64_t>(
                    (d - 1) / 2, cont);
                const std::uint64_t covered = cont - prefix;
                const double anchors = covered
                    ? static_cast<double>((covered + d - 1) / d)
                    : 0.0;
                double large = 0.0;
                double pages = 0.0;
                if (cont >= hugePages) {
                    // THP-capable chunk: the prefix rounds up to 2MB
                    // entries; the sub-512-page sliver is a constant,
                    // rarely-touched residue and is ignored.
                    large = static_cast<double>(
                        (prefix + hugePages - 1) / hugePages);
                } else {
                    pages = static_cast<double>(prefix);
                }
                cost += (anchors + large + pages) * f;
                continue;
            }
            const double anchors = static_cast<double>(cont / d);
            const std::uint64_t remainder = cont % d;
            const double large =
                static_cast<double>(remainder / hugePages);
            const double pages =
                static_cast<double>(remainder % hugePages);
            if (model == DistanceCostModel::EntryCount) {
                cost += (anchors + large + pages) * f;
            } else {
                cost += anchors * f / static_cast<double>(d);
                cost += large * f / static_cast<double>(hugePages);
                cost += pages * f;
            }
        }
        sel.candidates.emplace_back(d, cost);
        if (cost < sel.cost) {
            sel.cost = cost;
            sel.distance = d;
        }
    }
    return sel;
}

DistanceController::DistanceController(std::uint64_t initial_distance,
                                       double improvement_threshold)
    : distance_(initial_distance), threshold_(improvement_threshold)
{
    ATLB_ASSERT(improvement_threshold >= 0.0, "negative threshold");
}

bool
DistanceController::epoch(const Histogram &contiguity)
{
    ++epochs_;
    const DistanceSelection sel = selectAnchorDistance(contiguity);
    if (sel.distance == distance_)
        return false;

    // Find the current distance's cost among the candidates to decide
    // whether the improvement justifies a (costly) page-table sweep.
    double current_cost = std::numeric_limits<double>::infinity();
    for (const auto &[d, c] : sel.candidates) {
        if (d == distance_)
            current_cost = c;
    }

    const bool first = !initialized_;
    initialized_ = true;
    if (!first && sel.cost > current_cost * (1.0 - threshold_))
        return false; // improvement too small; keep current distance

    distance_ = sel.distance;
    ++changes_;
    return true;
}

} // namespace atlb
