#include "access_sampler.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "os/memory_map.hh"

namespace atlb
{

AccessSampler::AccessSampler(const MemoryMap &map) : map_(map)
{
    ATLB_ASSERT(map.finalized(), "sampling an unfinalized map");
}

void
AccessSampler::sample(Vpn vpn)
{
    const Chunk *c = map_.chunkContaining(vpn);
    if (!c)
        return;
    const std::size_t idx =
        static_cast<std::size_t>(c - map_.chunks().data());
    ++counts_[idx];
    ++total_;
}

std::vector<ChunkAccess>
AccessSampler::chunkAccesses() const
{
    std::vector<ChunkAccess> out;
    out.reserve(counts_.size());
    for (const auto &[idx, count] : counts_)
        out.push_back({map_.chunks()[idx].pages, count});
    return out;
}

void
AccessSampler::reset()
{
    counts_.clear();
    total_ = 0;
}

CapacitySelection
selectAnchorDistanceCapacityAware(const std::vector<ChunkAccess> &chunks,
                                  std::uint64_t capacity_entries)
{
    ATLB_ASSERT(capacity_entries > 0, "zero TLB capacity");
    CapacitySelection sel;
    sel.predicted_miss = std::numeric_limits<double>::infinity();

    double total_samples = 0.0;
    for (const ChunkAccess &c : chunks)
        total_samples += static_cast<double>(c.samples);
    if (total_samples == 0.0) {
        sel.predicted_miss = 1.0;
        return sel;
    }

    // Real TLBs thrash well before 100% occupancy (set conflicts, the
    // cold tail competing for ways): derate the nominal capacity.
    const double effective_capacity =
        0.75 * static_cast<double>(capacity_entries);

    for (const std::uint64_t d : candidateDistances()) {
        double uncovered = 0.0; // access-weighted
        double entries = 0.0;
        for (const ChunkAccess &c : chunks) {
            if (c.samples == 0)
                continue; // cold chunks won't be resident
            const double weight =
                static_cast<double>(c.samples) / total_samples;
            const std::uint64_t prefix =
                std::min<std::uint64_t>((d - 1) / 2, c.pages);
            const std::uint64_t cov_pages = c.pages - prefix;

            // Residency cost of keeping this chunk translated.
            if (cov_pages)
                entries += static_cast<double>((cov_pages + d - 1) / d);
            if (c.pages >= hugePages) {
                // Prefix served by 2MB entries (THP-capable chunk);
                // those accesses hit as long as the entries fit.
                entries += static_cast<double>(
                    (prefix + hugePages - 1) / hugePages);
            } else {
                // Prefix pages fall back to 4KB entries and their
                // accesses mostly miss on a busy TLB: uncovered mass.
                uncovered +=
                    weight * static_cast<double>(prefix) /
                    static_cast<double>(c.pages);
            }
        }
        const double covered = 1.0 - uncovered;

        double miss = uncovered;
        if (entries > effective_capacity)
            miss += covered * (1.0 - effective_capacity / entries);
        sel.candidates.emplace_back(d, miss);
        // Ties go to the larger distance: same predicted misses with
        // fewer resident entries.
        if (miss <= sel.predicted_miss + 1e-9) {
            sel.predicted_miss = std::min(miss, sel.predicted_miss);
            sel.distance = d;
        }
    }
    return sel;
}

} // namespace atlb
