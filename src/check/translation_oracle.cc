#include "translation_oracle.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"

namespace atlb
{

TranslationOracle::TranslationOracle(Mmu &mmu, const MemoryMap *map)
    : mmu_(&mmu), map_(map)
{
}

TranslationResult
TranslationOracle::translate(VirtAddr va)
{
    const TranslationResult res = mmu_->translate(va);
    verify(va, res);
    ++verified_;
    return res;
}

void
TranslationOracle::verify(VirtAddr va, const TranslationResult &res) const
{
    const Vpn vpn = vpnOf(va);

    // Ground truth #1: the authoritative page table (guest dimension).
    const WalkResult walk = mmu_->pageTable().walk(vpn);
    ANCHOR_CHECK(walk.present,
                 "oracle[{}]: fast path translated unmapped vpn {}",
                 mmu_->name(), vpn);

    // Host dimension when nested, else the guest walk is final.
    Ppn expected = walk.ppn;
    if (const PageTable *host = mmu_->hostPageTable()) {
        const WalkResult hw = host->walk(hostVpnOf(walk.ppn));
        ANCHOR_CHECK(hw.present,
                     "oracle[{}]: guest frame {} unmapped in host",
                     mmu_->name(), walk.ppn);
        expected = hw.ppn;
    }
    // guest_ppn is only defined on walk results: a TLB hit caches the
    // combined translation and no longer knows the guest frame.
    if (res.level == HitLevel::PageWalk) {
        ANCHOR_CHECK_EQ(res.guest_ppn, walk.ppn,
                        "oracle[{}]: guest frame mismatch for vpn {}",
                        mmu_->name(), vpn);
    }
    ANCHOR_CHECK_EQ(res.ppn, expected,
                    "oracle[{}]: frame mismatch for vpn {}",
                    mmu_->name(), vpn);

    // Ground truth #2: the OS mapping the table was built from. This
    // catches table-construction bugs the walk alone cannot (the walk
    // and the fast path could agree on a wrongly built table).
    if (map_ != nullptr) {
        ANCHOR_CHECK_EQ(walk.ppn, map_->translate(vpn),
                        "oracle[{}]: page table disagrees with the OS "
                        "mapping at vpn {}",
                        mmu_->name(), vpn);
    }
}

DifferentialOracle::DifferentialOracle(const MemoryMap *map) : map_(map) {}

void
DifferentialOracle::attach(Mmu &mmu)
{
    oracles_.emplace_back(mmu, map_);
}

void
DifferentialOracle::setMap(const MemoryMap *map)
{
    map_ = map;
    for (TranslationOracle &oracle : oracles_)
        oracle.setMap(map);
}

Ppn
DifferentialOracle::translateAll(VirtAddr va)
{
    ANCHOR_CHECK(!oracles_.empty(), "no MMUs attached");
    ++steps_;
    Ppn agreed = invalidPpn;
    const Mmu *first = nullptr;
    for (TranslationOracle &oracle : oracles_) {
        const TranslationResult res = oracle.translate(va);
        if (first == nullptr) {
            agreed = res.ppn;
            first = &oracle.mmu();
            continue;
        }
        ANCHOR_CHECK_EQ(res.ppn, agreed,
                        "schemes '{}' and '{}' disagree at va {}",
                        oracle.mmu().name(), first->name(), va);
    }
    return agreed;
}

} // namespace atlb
