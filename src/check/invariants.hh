/**
 * @file
 * Structural invariant checkers for the simulator's core data
 * structures.
 *
 * Each checker walks one structure and reports every violated invariant
 * as a human-readable string; an empty report means the structure is
 * internally consistent. The check*() forms collect violations (for
 * tests that want to inspect them); the verify*() forms panic on the
 * first violation, so integration tests and checked builds can drop
 * them anywhere in a run and fail loudly at the moment the state first
 * goes bad rather than thousands of accesses later.
 *
 * The invariants guarded here are exactly the ones the anchor scheme's
 * correctness rests on (paper Section 3): a TLB set must never hold two
 * entries with the same tag (lookup would be ambiguous), an anchor
 * entry's cached contiguity must never extend past what the page table
 * actually maps contiguously (translation would fabricate frames), and
 * the buddy allocator's free lists must partition free memory (the OS
 * model would hand out overlapping frames).
 */

#ifndef ANCHORTLB_CHECK_INVARIANTS_HH
#define ANCHORTLB_CHECK_INVARIANTS_HH

#include <string>
#include <vector>

namespace atlb
{

class AnchorMmu;
class BuddyAllocator;
class SetAssocTlb;

/** Violations found by one checker pass (empty = consistent). */
struct InvariantReport
{
    std::vector<std::string> violations;

    [[nodiscard]] bool ok() const { return violations.empty(); }
};

/**
 * Set-associative TLB structure:
 *  - every valid entry's key indexes the set it is stored in;
 *  - no two valid entries in a set share (kind, key) — duplicate tags
 *    make lookups ambiguous;
 *  - LRU bookkeeping is sane: timestamps do not exceed the TLB's
 *    clock, and no two valid entries of a set share a non-zero
 *    timestamp (the replacement order must be a strict order).
 */
InvariantReport checkTlbInvariants(const SetAssocTlb &tlb);

/**
 * Anchor scheme semantics: every anchor entry cached in @p mmu's L2
 *  - decodes to an anchor VPN aligned to the current distance;
 *  - carries contiguity within (0, distance] and the representable
 *    maximum;
 *  - covers only pages the authoritative page table maps at exactly
 *    the frame the anchor arithmetic produces — i.e. the cached
 *    contiguity never crosses an unmapped or migrated page. In nested
 *    mode the expected frame is computed through both dimensions.
 */
InvariantReport checkAnchorInvariants(const AnchorMmu &mmu);

/**
 * Buddy allocator free lists:
 *  - blocks are aligned to their order and lie inside the pool;
 *  - no two free blocks overlap (a double free shows up here);
 *  - no free block has a free buddy below max order (eager coalescing
 *    means such a pair is unreachable state);
 *  - the per-order lists sum to the free-page counter.
 */
InvariantReport checkBuddyInvariants(const BuddyAllocator &buddy);

/** Panic on the first violation; no-op when the structure is clean. */
void verifyTlbInvariants(const SetAssocTlb &tlb);
void verifyAnchorInvariants(const AnchorMmu &mmu);
void verifyBuddyInvariants(const BuddyAllocator &buddy);

} // namespace atlb

#endif // ANCHORTLB_CHECK_INVARIANTS_HH
