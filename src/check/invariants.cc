#include "invariants.hh"

#include <map>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "mem/buddy_allocator.hh"
#include "mmu/anchor_mmu.hh"
#include "os/page_table.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

namespace
{

/** Append a formatted violation to @p report. */
template <typename... Args>
void
violate(InvariantReport &report, std::string_view fmt, const Args &...args)
{
    report.violations.push_back(format(fmt, args...));
}

} // namespace

InvariantReport
checkTlbInvariants(const SetAssocTlb &tlb)
{
    InvariantReport report;
    for (unsigned set = 0; set < tlb.numSets(); ++set) {
        for (unsigned way = 0; way < tlb.numWays(); ++way) {
            const TlbEntry &e = tlb.entryAt(set, way);
            if (!e.valid)
                continue;

            const unsigned home =
                static_cast<unsigned>(e.key.raw() & (tlb.numSets() - 1));
            if (home != set) {
                violate(report,
                        "{}: entry key {} stored in set {} but indexes "
                        "set {}",
                        tlb.name(), e.key, set, home);
            }
            if (tlb.lastUseAt(set, way) > tlb.lruTick()) {
                violate(report,
                        "{}: set {} way {} timestamp {} exceeds clock {}",
                        tlb.name(), set, way, tlb.lastUseAt(set, way),
                        tlb.lruTick());
            }

            for (unsigned other = way + 1; other < tlb.numWays();
                 ++other) {
                const TlbEntry &o = tlb.entryAt(set, other);
                if (!o.valid)
                    continue;
                if (o.kind == e.kind && o.key == e.key) {
                    violate(report,
                            "{}: duplicate tag (kind {}, key {}) in set "
                            "{} ways {} and {}",
                            tlb.name(), static_cast<unsigned>(e.kind),
                            e.key, set, way, other);
                }
                if (tlb.lastUseAt(set, way) != 0 &&
                    tlb.lastUseAt(set, way) == tlb.lastUseAt(set, other)) {
                    violate(report,
                            "{}: set {} ways {} and {} share LRU "
                            "timestamp {} (replacement order ambiguous)",
                            tlb.name(), set, way, other,
                            tlb.lastUseAt(set, way));
                }
            }
        }
    }
    return report;
}

InvariantReport
checkAnchorInvariants(const AnchorMmu &mmu)
{
    InvariantReport report;
    const std::uint64_t distance = mmu.distance().pages();
    const unsigned shift = mmu.distance().log2();
    const SetAssocTlb &l2 = mmu.l2Tlb();
    const PageTable &table = mmu.pageTable();
    const PageTable *host = mmu.hostPageTable();

    for (unsigned set = 0; set < l2.numSets(); ++set) {
        for (unsigned way = 0; way < l2.numWays(); ++way) {
            const TlbEntry &e = l2.entryAt(set, way);
            if (!e.valid || e.kind != EntryKind::Anchor)
                continue;
            // Retained entries of other address spaces can't be checked
            // here: their page table isn't the one loaded in the MMU.
            if (tlbKeyAsid(e.key) != l2.asid())
                continue;

            // Anchor keys are group-encoded under the ASID tag;
            // reconstructing the VPN is this checker's job.
            constexpr std::uint64_t scheme_mask =
                (std::uint64_t{1} << tlbKeyAsidShift) - 1;
            // lint-allow: page-shift
            const Vpn avpn{(e.key.raw() & scheme_mask) << shift};
            if (!avpn.isAligned(distance)) {
                violate(report,
                        "{}: anchor vpn {} not aligned to distance {}",
                        l2.name(), avpn, distance);
                continue;
            }
            if (e.aux == 0 || e.aux > distance ||
                e.aux > PageTable::maxContiguity) {
                violate(report,
                        "{}: anchor vpn {} contiguity {} outside "
                        "(0, min(distance {}, 2^16)]",
                        l2.name(), avpn, e.aux, distance);
                continue;
            }

            // The cached contiguity claims every page in
            // [avpn, avpn + aux) translates by anchor arithmetic; the
            // page table is the ground truth for that claim.
            for (std::uint64_t i = 0; i < e.aux; ++i) {
                const WalkResult walk = table.walk(avpn + i);
                if (!walk.present) {
                    violate(report,
                            "{}: anchor vpn {} contiguity {} crosses "
                            "unmapped vpn {}",
                            l2.name(), avpn, e.aux, avpn + i);
                    break;
                }
                Ppn expected = walk.ppn;
                if (host != nullptr) {
                    const WalkResult hw = host->walk(hostVpnOf(walk.ppn));
                    if (!hw.present) {
                        violate(report,
                                "{}: anchor vpn {} guest frame {} "
                                "unmapped in host",
                                l2.name(), avpn, walk.ppn);
                        break;
                    }
                    expected = hw.ppn;
                }
                if (expected != e.ppn + i) {
                    violate(report,
                            "{}: anchor vpn {} frame {} + offset {} "
                            "disagrees with page table frame {}",
                            l2.name(), avpn, e.ppn, i, expected);
                    break;
                }
            }
        }
    }
    return report;
}

InvariantReport
checkBuddyInvariants(const BuddyAllocator &buddy)
{
    InvariantReport report;
    const auto blocks = buddy.freeBlockList();

    std::uint64_t counted = 0;
    std::map<std::pair<unsigned, Ppn>, bool> by_order;
    Ppn prev_end{0};
    bool first = true;
    for (const auto &[base, order] : blocks) {
        const std::uint64_t pages = 1ULL << order;
        counted += pages;
        by_order[{order, base}] = true;

        if (!base.isAligned(pages)) {
            violate(report, "free block {} misaligned for order {}",
                    base, order);
        }
        if (base.raw() + pages > buddy.totalPages()) {
            violate(report,
                    "free block {} order {} extends past pool end {}",
                    base, order, buddy.totalPages());
        }
        if (!first && base < prev_end) {
            violate(report,
                    "free block {} order {} overlaps the previous block "
                    "ending at {} (double free?)",
                    base, order, prev_end);
        }
        prev_end = base + pages;
        first = false;
    }

    for (const auto &[base, order] : blocks) {
        if (order >= buddy.maxOrder())
            continue;
        const Ppn pair{base.raw() ^ (1ULL << order)};
        if (base < pair && by_order.count({order, pair})) {
            violate(report,
                    "free buddies {} and {} at order {} failed to "
                    "coalesce",
                    base, pair, order);
        }
    }

    if (counted != buddy.freePages()) {
        violate(report,
                "free lists hold {} pages but the counter says {}",
                counted, buddy.freePages());
    }
    return report;
}

namespace
{

void
panicOnViolation(const char *what, const InvariantReport &report)
{
    if (!report.ok()) {
        ATLB_PANIC("{} invariant violated: {} ({} violation(s) total)",
                   what, report.violations.front(),
                   report.violations.size());
    }
}

} // namespace

void
verifyTlbInvariants(const SetAssocTlb &tlb)
{
    panicOnViolation("TLB", checkTlbInvariants(tlb));
}

void
verifyAnchorInvariants(const AnchorMmu &mmu)
{
    panicOnViolation("anchor", checkAnchorInvariants(mmu));
}

void
verifyBuddyInvariants(const BuddyAllocator &buddy)
{
    panicOnViolation("buddy", checkBuddyInvariants(buddy));
}

} // namespace atlb
