/**
 * @file
 * Differential translation oracle.
 *
 * The anchor scheme (and every other coalescing scheme) answers most
 * translations from derived state: a cached anchor entry plus offset
 * arithmetic, a cluster bitmap, a range base. The page table is the
 * only authoritative source, and a silent desync between the two —
 * e.g. a stale anchor contiguity after a migration — corrupts every
 * downstream statistic without failing a single assertion. The oracle
 * closes that hole: it shadows an Mmu, re-derives every translation
 * from the authoritative PageTable (both dimensions in nested mode)
 * and optionally the OS MemoryMap, and panics on the first
 * disagreement.
 *
 * DifferentialOracle extends this across schemes: all five pipelines
 * (baseline, COLT, cluster, RMM, anchor) are driven with the same
 * access stream and must produce byte-identical frames — translation
 * performance may differ per scheme, translation results never may.
 *
 * The oracle panics regardless of build flavour; it costs a page-table
 * walk per access, so it belongs in tests and checked builds, not on
 * the measured fast path. (The zero-cost-in-release variant is the
 * ANCHOR_DCHECK hook inside Mmu::translate itself, enabled by
 * -DANCHORTLB_CHECKED=ON.)
 */

#ifndef ANCHORTLB_CHECK_TRANSLATION_ORACLE_HH
#define ANCHORTLB_CHECK_TRANSLATION_ORACLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mmu/mmu.hh"

namespace atlb
{

class MemoryMap;

/** Shadows one Mmu and verifies every translation it returns. */
class TranslationOracle
{
  public:
    /**
     * @param mmu the MMU under test; must outlive the oracle.
     * @param map optional second ground truth: the OS mapping the
     *            page table was built from (guest dimension).
     */
    explicit TranslationOracle(Mmu &mmu, const MemoryMap *map = nullptr);

    /** Translate through the shadowed MMU, then verify. */
    TranslationResult translate(VirtAddr va);

    /** Verify an externally produced result; panics on mismatch. */
    void verify(VirtAddr va, const TranslationResult &res) const;

    /** Swap the mapping ground truth (after an epoch rebuild). */
    void setMap(const MemoryMap *map) { map_ = map; }

    /** Translations verified so far. */
    std::uint64_t verified() const { return verified_; }

    Mmu &mmu() const { return *mmu_; }

  private:
    Mmu *mmu_;
    const MemoryMap *map_;
    std::uint64_t verified_ = 0;
};

/**
 * Drives several MMUs with one access stream and checks that every
 * scheme translates every address to the same frame — each verified
 * against its own page table first, then against the shared mapping.
 */
class DifferentialOracle
{
  public:
    explicit DifferentialOracle(const MemoryMap *map = nullptr);

    /** Register an MMU; must outlive the oracle. */
    void attach(Mmu &mmu);

    /** Swap the shared mapping ground truth for every oracle. */
    void setMap(const MemoryMap *map);

    /**
     * Translate @p va through every attached MMU; panics unless all
     * agree with their tables, the mapping, and each other.
     * @return the (unanimous) physical frame.
     */
    Ppn translateAll(VirtAddr va);

    /** Access steps driven so far. */
    std::uint64_t steps() const { return steps_; }

    const std::vector<TranslationOracle> &oracles() const
    {
        return oracles_;
    }

  private:
    std::vector<TranslationOracle> oracles_;
    const MemoryMap *map_;
    std::uint64_t steps_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_CHECK_TRANSLATION_ORACLE_HH
