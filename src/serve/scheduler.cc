#include "scheduler.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"

namespace atlb
{

namespace
{

std::uint64_t
elapsedSinceUs(std::chrono::steady_clock::time_point start)
{
    const auto delta = std::chrono::steady_clock::now() - start;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

/**
 * Pair-cache identity. CellPairState construction reads exactly
 * options.seed and options.footprint_scale (see experiment.hh), so the
 * key must cover those two knobs plus the pair itself — nothing else,
 * or identical builds would be duplicated across requests.
 */
std::string
pairCacheKey(const SimOptions &options, const CellJob &job)
{
    Fnv1a h;
    h.addU64(options.seed).addDouble(options.footprint_scale);
    std::string key = std::to_string(h.digest());
    key += '|';
    key += job.workload;
    key += '|';
    key += scenarioName(job.scenario);
    return key;
}

} // namespace

/** One admitted cell, waiting for a worker. */
struct CellScheduler::QueuedJob
{
    std::size_t index = 0;
    CellJob job;
    std::chrono::steady_clock::time_point enqueued;
};

/** Shared ticket state (scheduler mutex guards every field). */
struct CellScheduler::Ticket::State
{
    SimOptions options; //!< threads forced to 1 by open()
    Completion on_complete;
    std::deque<QueuedJob> queue;
    std::size_t outstanding = 0; //!< submitted, callback not yet run
    bool in_ring = false;
};

/**
 * One cached CellPairState. The scheduler mutex guards pins/last_use;
 * the build itself runs outside it under the once_flag so concurrent
 * jobs of one pair share a single construction without blocking
 * unrelated workers.
 */
struct CellScheduler::PairEntry
{
    SimOptions build_options;
    std::string workload;
    ScenarioKind scenario = ScenarioKind::Demand;
    std::once_flag once;
    std::unique_ptr<CellPairState> state;
    std::size_t pins = 0;
    std::uint64_t last_use = 0;
};

CellScheduler::CellScheduler(unsigned threads,
                             std::size_t max_queue_cells,
                             std::size_t max_pairs)
    : max_queue_cells_(std::max<std::size_t>(1, max_queue_cells)),
      max_pairs_(std::max<std::size_t>(1, max_pairs))
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CellScheduler::~CellScheduler()
{
    {
        const std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    // Workers drain every queued job before exiting (see workerLoop),
    // so in-flight tickets still complete.
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::unique_ptr<CellScheduler::Ticket>
CellScheduler::open(const SimOptions &options, Completion on_complete)
{
    auto state = std::make_shared<Ticket::State>();
    state->options = options;
    // The parallelism budget is the scheduler's worker pool; a job must
    // never fan out its own threads. threads is excluded from the cell
    // key, so forcing it cannot change any result.
    state->options.threads = 1;
    state->on_complete = std::move(on_complete);
    {
        const std::lock_guard<std::mutex> lock(m_);
        ++stats_.tickets_open;
    }
    return std::unique_ptr<Ticket>(new Ticket(*this, std::move(state)));
}

void
CellScheduler::submitJob(const std::shared_ptr<Ticket::State> &ticket,
                         std::size_t index, const CellJob &job)
{
    std::unique_lock<std::mutex> lock(m_);
    if (stats_.depth >= max_queue_cells_) {
        // Backpressure: admit incrementally as workers free up slots.
        ++stats_.admission_stalls;
        space_cv_.wait(lock, [this] {
            return stats_.depth < max_queue_cells_;
        });
    }
    QueuedJob queued;
    queued.index = index;
    queued.job = job;
    queued.enqueued = std::chrono::steady_clock::now();
    ticket->queue.push_back(std::move(queued));
    ++ticket->outstanding;
    if (!ticket->in_ring) {
        ticket->in_ring = true;
        ring_.push_back(ticket);
    }
    ++stats_.enqueued;
    ++stats_.depth;
    stats_.depth_peak = std::max(stats_.depth_peak, stats_.depth);
    work_cv_.notify_one();
}

void
CellScheduler::waitTicket(Ticket::State &ticket)
{
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock,
                  [&ticket] { return ticket.outstanding == 0; });
}

void
CellScheduler::closeTicket(Ticket::State &ticket)
{
    const std::lock_guard<std::mutex> lock(m_);
    ATLB_ASSERT(ticket.outstanding == 0 && ticket.queue.empty(),
                "ticket closed with jobs outstanding");
    --stats_.tickets_open;
}

std::shared_ptr<CellScheduler::PairEntry>
CellScheduler::acquirePair(const SimOptions &options, const CellJob &job)
{
    const std::string key = pairCacheKey(options, job);
    const std::lock_guard<std::mutex> lock(m_);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
        auto entry = std::make_shared<PairEntry>();
        entry->build_options = options;
        entry->workload = job.workload;
        entry->scenario = job.scenario;
        it = pairs_.emplace(key, std::move(entry)).first;
        ++stats_.pair_builds;
    } else {
        ++stats_.pair_reuses;
    }
    ++it->second->pins;
    it->second->last_use = ++lru_tick_;
    return it->second;
}

void
CellScheduler::releasePair(const std::shared_ptr<PairEntry> &entry)
{
    const std::lock_guard<std::mutex> lock(m_);
    ATLB_ASSERT(entry->pins > 0, "pair released more often than pinned");
    --entry->pins;
    // Evict coldest unpinned entries beyond the budget. Pinned entries
    // are never evicted, so the cache may transiently overshoot when
    // more than max_pairs_ distinct pairs are executing at once.
    while (pairs_.size() > max_pairs_) {
        auto victim = pairs_.end();
        for (auto it = pairs_.begin(); it != pairs_.end(); ++it) {
            if (it->second->pins != 0)
                continue;
            if (victim == pairs_.end() ||
                it->second->last_use < victim->second->last_use)
                victim = it;
        }
        if (victim == pairs_.end())
            break;
        pairs_.erase(victim);
    }
}

void
CellScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(m_);
    while (true) {
        work_cv_.wait(lock,
                      [this] { return stop_ || !ring_.empty(); });
        if (ring_.empty()) {
            if (stop_)
                return;
            continue;
        }

        // Round-robin fairness: take one job from the front ticket,
        // then rotate it behind every other ticket that has work.
        std::shared_ptr<Ticket::State> ticket = ring_.front();
        ring_.pop_front();
        QueuedJob queued = std::move(ticket->queue.front());
        ticket->queue.pop_front();
        if (ticket->queue.empty())
            ticket->in_ring = false;
        else
            ring_.push_back(ticket);
        --stats_.depth;
        ++stats_.running;
        space_cv_.notify_one();
        lock.unlock();

        const std::uint64_t wait_us = elapsedSinceUs(queued.enqueued);
        const std::shared_ptr<PairEntry> pair =
            acquirePair(ticket->options, queued.job);
        std::call_once(pair->once, [&pair] {
            pair->state = std::make_unique<CellPairState>(
                pair->build_options, pair->workload, pair->scenario);
        });
        const SimResult result =
            runCellJob(ticket->options, *pair->state, queued.job);
        releasePair(pair);
        // Publish before the ticket can observe completion: wait()
        // returns only after outstanding hits zero below, so callbacks
        // may write submitter-owned slots race-free.
        ticket->on_complete(queued.index, result, wait_us);

        lock.lock();
        ++stats_.completed;
        --stats_.running;
        --ticket->outstanding;
        if (ticket->outstanding == 0)
            done_cv_.notify_all();
    }
}

CellScheduler::Stats
CellScheduler::stats() const
{
    const std::lock_guard<std::mutex> lock(m_);
    Stats out = stats_;
    out.pairs_cached = pairs_.size();
    return out;
}

CellScheduler::Ticket::Ticket(CellScheduler &scheduler,
                              std::shared_ptr<State> state)
    : scheduler_(scheduler), state_(std::move(state))
{
}

CellScheduler::Ticket::~Ticket()
{
    scheduler_.waitTicket(*state_);
    scheduler_.closeTicket(*state_);
}

void
CellScheduler::Ticket::submit(std::size_t index, const CellJob &job)
{
    scheduler_.submitJob(state_, index, job);
}

void
CellScheduler::Ticket::wait()
{
    scheduler_.waitTicket(*state_);
}

} // namespace atlb
