/**
 * @file
 * Client side of the sweep service: connect, one request per call.
 *
 * Wraps the unix-socket line protocol (wire.hh) behind a typed
 * request/response API for the `anchortlb submit|query|serve stop`
 * subcommands and the serve tests. Errors are returned, never fatal —
 * a missing or dying server is an expected condition for a client.
 */

#ifndef ANCHORTLB_SERVE_CLIENT_HH
#define ANCHORTLB_SERVE_CLIENT_HH

#include <string>

#include "serve/wire.hh"

namespace atlb
{

/** One connection to a SweepServer. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to the server socket; false with @p error on failure. */
    bool connect(const std::string &socket_path, std::string *error);

    /**
     * Send @p request and decode the server's reply line into
     * @p response. False with @p error on transport or protocol
     * failure; a response with ok == false is returned as success
     * here (the request round-tripped — inspect response.error).
     */
    bool roundTrip(const SweepRequest &request, SweepResponse &response,
                   std::string *error);

    void disconnect();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buf_; //!< bytes past the last reply line
};

} // namespace atlb

#endif // ANCHORTLB_SERVE_CLIENT_HH
