/**
 * @file
 * Content-addressed persistent store of finished experiment cells.
 *
 * One file holds SimResult records keyed by CellKey (the canonical
 * FNV-1a content address of every input shaping a cell — see
 * sim/experiment.hh cellKeyFor and DESIGN.md section 13). The format
 * is append-only and corruption-tolerant:
 *
 *   [0..8)  magic "ATLBRES1"
 *   records back to back, each:
 *           u32 payload bytes | u8 kind | u8[3] reserved |
 *           u64 key | u64 FNV-1a(payload) | payload
 *
 * kind 1 records carry an encoded SimResult; kind 2 is a tombstone
 * (explicit invalidation) whose payload is empty. Within the file the
 * *latest* record for a key wins, so store() and invalidate() are
 * plain appends — crash-safe up to the last complete record. open()
 * replays the log into memory; a truncated or checksum-corrupt tail
 * (the typical torn-write outcome) is dropped by truncating the file
 * back to the last intact record, never fatal. A wrong magic *is*
 * fatal: that is not a torn write but a different file.
 *
 * Invalidation is mostly implicit: every input (trace content hash,
 * MmuConfig, sweep knobs) is folded into the key, so a changed input
 * addresses a different cell and simply misses. Tombstones and gc()
 * exist for explicit eviction and for compacting superseded records.
 *
 * Single-writer guard: opening a store takes an exclusive flock on the
 * sidecar "<path>.lock" file, held until destruction. A second open of
 * a live store — e.g. `store gc` against a running server's store,
 * which would truncate in-flight appends as a "corrupt tail" and then
 * rename the file out from under the server — is refused with a fatal
 * diagnostic instead. The lock lives in a sidecar (not the data file)
 * so gc()'s rename cannot detach it.
 */

#ifndef ANCHORTLB_SERVE_RESULT_STORE_HH
#define ANCHORTLB_SERVE_RESULT_STORE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/experiment.hh"

namespace atlb
{

/** Encode @p result as a store payload (ByteWriter sequence). */
std::string encodeSimResult(const SimResult &result);

/**
 * Decode a store payload; false on any malformation (short buffer,
 * trailing bytes). Exact inverse of encodeSimResult, including the
 * bit pattern of the one double.
 */
bool decodeSimResult(const std::string &payload, SimResult &out);

/** On-disk ResultCache implementation (thread-safe). */
class ResultStore final : public ResultCache
{
  public:
    /**
     * Open (or create) the store at @p path and replay its log; fatal
     * on an unwritable path, foreign magic, or when another ResultStore
     * (this process or any other) holds the store open — see the
     * single-writer guard in the file comment. Tolerant of a corrupt
     * tail (dropped and counted in counters().corrupt_dropped).
     */
    explicit ResultStore(const std::string &path);

    /** Releases the store lock. */
    ~ResultStore() override;

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    std::optional<SimResult> lookup(CellKey key) override;
    void store(CellKey key, const SimResult &result) override;

    /** Append a tombstone for @p key (idempotent). */
    void invalidate(CellKey key);

    /**
     * Compact: rewrite the file with one record per live cell,
     * dropping superseded records and tombstones. Returns the number
     * of records dropped.
     */
    std::uint64_t gc();

    /** Effectiveness and health counters (monotonic per open). */
    struct Counters
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t appends = 0;
        std::uint64_t invalidations = 0;
        /** Corrupt-tail records dropped at open. */
        std::uint64_t corrupt_dropped = 0;
        std::uint64_t gc_evicted = 0;
    };

    Counters counters() const;

    /** A point-in-time shape summary for `anchortlb store info`. */
    struct Info
    {
        std::string path;
        std::uint64_t file_bytes = 0;
        std::uint64_t live_cells = 0;
        /** Records in the log (live + superseded + tombstones). */
        std::uint64_t records = 0;
    };

    Info info() const;

  private:
    void acquireLock();
    void openAndReplay();
    void appendRecord(std::uint8_t kind, CellKey key,
                      const std::string &payload);

    mutable std::mutex mutex_;
    std::string path_;
    /** fd of "<path>.lock", exclusively flock'd for our lifetime. */
    int lock_fd_ = -1;
    std::unordered_map<std::uint64_t, SimResult> cells_;
    std::uint64_t records_ = 0; //!< records currently in the log
    Counters counters_;
};

} // namespace atlb

#endif // ANCHORTLB_SERVE_RESULT_STORE_HH
