#include "client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace atlb
{

ServeClient::~ServeClient()
{
    disconnect();
}

void
ServeClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
ServeClient::connect(const std::string &socket_path, std::string *error)
{
    const auto fail = [this, error](const std::string &msg) {
        if (error)
            *error = msg + " (" + std::strerror(errno) + ")";
        disconnect();
        return false;
    };

    disconnect();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (error) {
            *error = "socket path '" + socket_path +
                     "' is too long for AF_UNIX";
        }
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return fail("cannot create socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return fail("cannot connect to '" + socket_path + "'");
    return true;
}

bool
ServeClient::roundTrip(const SweepRequest &request,
                       SweepResponse &response, std::string *error)
{
    const auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    if (fd_ < 0)
        return fail("not connected");

    const std::string line = encodeRequest(request) + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n = ::send(fd_, line.data() + sent,
                                 line.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail(std::string("send failed (") +
                        std::strerror(errno) + ")");
        }
        sent += static_cast<std::size_t>(n);
    }

    for (;;) {
        const std::size_t newline = buf_.find('\n');
        if (newline != std::string::npos) {
            std::string reply = buf_.substr(0, newline);
            buf_.erase(0, newline + 1);
            return decodeResponse(reply, response, error);
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail(std::string("recv failed (") +
                        std::strerror(errno) + ")");
        }
        if (n == 0)
            return fail("server closed the connection");
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace atlb
