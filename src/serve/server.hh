/**
 * @file
 * Long-lived sweep server over a unix-domain socket.
 *
 * `anchortlb serve` binds a SOCK_STREAM unix socket and answers the
 * line-delimited JSON protocol of wire.hh. Each connection gets a
 * thread; each submit request resolves its cells in three tiers:
 *
 *   1. store hit   — the persistent ResultStore already holds the
 *                    cell's content address: answered with zero
 *                    simulation work.
 *   2. in-flight   — an identical cell is being computed by another
 *      dedup         request right now: this request waits for that
 *                    result instead of recomputing it.
 *   3. computed    — the remaining misses are claimed, sorted by
 *                    (workload, scenario) for pair-state locality,
 *                    and submitted cell-by-cell to the shared
 *                    CellScheduler (scheduler.hh); each cell is
 *                    appended to the store and published to its
 *                    Inflight waiters the moment it completes.
 *
 * There is no per-request simulation barrier: all connections share
 * one fixed worker pool (sized by SimOptions::threads) that
 * round-robins across requests, so a 1-cell request completes while a
 * 500-cell grid is in flight. Admission is bounded
 * (ServeOptions::max_queue_cells) — oversized grids block on submit
 * and admit incrementally (counted as admission stalls). Expensive
 * per-(workload, scenario) pair state is owned by the scheduler in a
 * pinned LRU shared across requests (ServeOptions::max_pairs).
 */

#ifndef ANCHORTLB_SERVE_SERVER_HH
#define ANCHORTLB_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/result_store.hh"
#include "serve/scheduler.hh"
#include "serve/wire.hh"
#include "sim/experiment.hh"
#include "stats/histogram.hh"

namespace atlb
{

/** Server configuration. */
struct ServeOptions
{
    std::string socket_path;
    std::string store_path;
    /** Base SimOptions; requests may override the sweep knobs. */
    SimOptions base;
    /** Admission bound: max cells queued across all requests. */
    std::size_t max_queue_cells = 4096;
    /** Scheduler-owned (workload, scenario) pair-state cache size. */
    std::size_t max_pairs = 8;
};

/** Request-handling counters, reported on every reply. */
struct ServerCounters
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t cells = 0;
    std::uint64_t hits = 0;        //!< cells answered from the store
    std::uint64_t dedups = 0;      //!< cells that joined an in-flight run
    std::uint64_t simulations = 0; //!< cells actually simulated
    std::uint64_t cell_errors = 0; //!< invalid cells refused
    std::uint64_t queue_peak = 0;  //!< scheduler depth high-water mark
    /** submit() calls that blocked on the bounded admission queue. */
    std::uint64_t admission_stalls = 0;
    /** Per-request wall time, microseconds (every decoded request). */
    Log2Histogram request_wall_us{33};
    /** Per-cell queue wait, microseconds (claimed cells only). */
    Log2Histogram queue_wait_us{33};
};

/** The sweep service (one instance per `anchortlb serve`). */
class SweepServer
{
  public:
    explicit SweepServer(ServeOptions options);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind + listen; false with @p error on failure. */
    bool start(std::string *error);

    /**
     * Accept/serve until requestStop() (or a shutdown request).
     * Joins every connection thread and unlinks the socket before
     * returning.
     */
    void run();

    /** Ask run() to wind down. */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /**
     * Also observe @p flag as a stop request. A SIGINT/SIGTERM handler
     * can only safely write a sig_atomic_t; the CLI points the server
     * at its flag and run() polls it alongside the internal one.
     */
    void watchStopFlag(const volatile std::sig_atomic_t *flag)
    {
        stop_flag_ = flag;
    }

    ServerCounters counters() const;
    ResultStore::Counters storeCounters() const;
    ResultStore::Info storeInfo() const;
    CellScheduler::Stats schedulerStats() const;

  private:
    /** A computation another request can wait on. */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        SimResult result;
    };

    void handleConnection(int fd);
    std::string handleLine(const std::string &line);
    SweepResponse handleRequest(const SweepRequest &request);
    void resolveCells(const SweepRequest &request, SweepResponse &resp);
    void appendCounters(SweepResponse &resp) const;

    bool stopping() const
    {
        return stop_.load(std::memory_order_relaxed) ||
               (stop_flag_ && *stop_flag_ != 0);
    }

    ServeOptions options_;
    ResultStore store_;
    /** Shared cross-request simulation pool (see scheduler.hh). */
    CellScheduler scheduler_;
    std::atomic<bool> stop_{false};
    const volatile std::sig_atomic_t *stop_flag_ = nullptr;
    int listen_fd_ = -1;

    mutable std::mutex state_m_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>>
        inflight_;
    ServerCounters counters_;

    std::mutex threads_m_;
    std::vector<std::thread> threads_;
};

} // namespace atlb

#endif // ANCHORTLB_SERVE_SERVER_HH
