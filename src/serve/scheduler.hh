/**
 * @file
 * Server-wide cell scheduler: one shared simulation pool for every
 * connection's claimed cells.
 *
 * The sweep server used to admit each request's miss batch under one
 * simulation mutex, so a 1-cell request could wait behind a 500-cell
 * grid. The scheduler replaces that barrier with per-cell jobs on a
 * fixed worker pool shared by all requests:
 *
 *  - Fairness: requests are tickets in FIFO admission order; workers
 *    round-robin one job at a time across the tickets that have work,
 *    so small requests interleave with (not queue behind) large grids.
 *  - Backpressure: at most max_queue_cells jobs may be queued across
 *    all tickets. submit() blocks until space frees up (counted as an
 *    admission stall), so an oversized grid admits incrementally
 *    instead of ballooning memory — and cannot deadlock, because
 *    workers only ever drain the queue.
 *  - Shared pair state: expensive per-(workload, scenario) state
 *    (mapping + lazily built page tables, CellPairState) is owned by
 *    the scheduler in a pinned LRU cache keyed by the pair plus the
 *    SimOptions fields its construction reads (seed, footprint_scale).
 *    Jobs from different requests reuse one build; entries pinned by a
 *    running job are never evicted.
 *  - Latency decoupling: each job's completion callback fires the
 *    moment the cell finishes, carrying the measured queue wait, so
 *    callers publish per cell instead of per batch.
 *
 * Determinism: jobs run through runCellJob with the ticket's options
 * forced to threads = 1 (threads is excluded from the cell key), so a
 * cell's result is byte-identical to a direct ExperimentContext run no
 * matter how requests interleave.
 */

#ifndef ANCHORTLB_SERVE_SCHEDULER_HH
#define ANCHORTLB_SERVE_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/parallel_runner.hh"

namespace atlb
{

/** Shared cross-request scheduler for simulation cells. */
class CellScheduler
{
  public:
    /**
     * Per-cell completion: the submitter's index for the job, its
     * result, and how long the job sat queued before a worker picked
     * it up. Runs on a worker thread, before the owning ticket's
     * wait() can return — callbacks may therefore write
     * submitter-owned slots without extra locking.
     */
    using Completion = std::function<void(
        std::size_t index, const SimResult &result,
        std::uint64_t queue_wait_us)>;

    /** Scheduler effectiveness counters (all monotonic except the
     *  instantaneous depth/running/pairs_cached). */
    struct Stats
    {
        std::uint64_t enqueued = 0;  //!< jobs ever admitted
        std::uint64_t completed = 0; //!< jobs finished (callback ran)
        /** submit() calls that had to block on a full queue. */
        std::uint64_t admission_stalls = 0;
        std::uint64_t depth = 0;      //!< queued, not yet running
        std::uint64_t depth_peak = 0; //!< high-water mark of depth
        std::uint64_t running = 0;    //!< executing right now
        std::uint64_t tickets_open = 0;
        std::uint64_t pair_builds = 0; //!< CellPairState constructions
        std::uint64_t pair_reuses = 0; //!< jobs that found one cached
        std::uint64_t pairs_cached = 0;
    };

    /**
     * One request's handle on the scheduler. submit() cells, then
     * wait(); the destructor waits too, so a ticket can never outrun
     * its jobs. Not thread-safe: one submitting thread per ticket
     * (completions run concurrently on workers).
     */
    class Ticket
    {
      public:
        ~Ticket();

        Ticket(const Ticket &) = delete;
        Ticket &operator=(const Ticket &) = delete;

        /**
         * Enqueue one cell; @p index is echoed to the completion
         * callback. Blocks while the scheduler-wide queue is at
         * capacity (backpressure).
         */
        void submit(std::size_t index, const CellJob &job);

        /** Block until every submitted job's callback has run. */
        void wait();

      private:
        friend class CellScheduler;
        struct State;
        Ticket(CellScheduler &scheduler, std::shared_ptr<State> state);

        CellScheduler &scheduler_;
        std::shared_ptr<State> state_;
    };

    /**
     * @p threads workers (at least 1); at most @p max_queue_cells jobs
     * queued across all tickets; at most @p max_pairs unpinned
     * CellPairState entries retained.
     */
    CellScheduler(unsigned threads, std::size_t max_queue_cells,
                  std::size_t max_pairs);

    /** Drains every queued job, then joins the workers. */
    ~CellScheduler();

    CellScheduler(const CellScheduler &) = delete;
    CellScheduler &operator=(const CellScheduler &) = delete;

    /**
     * Open a ticket for one request. @p options are the request's
     * resolved knobs (threads is overridden to 1 per job — the
     * parallelism budget is the scheduler's worker pool);
     * @p on_complete fires once per submitted job.
     */
    std::unique_ptr<Ticket> open(const SimOptions &options,
                                 Completion on_complete);

    Stats stats() const;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    struct PairEntry;
    struct QueuedJob;

    void workerLoop();
    void submitJob(const std::shared_ptr<Ticket::State> &ticket,
                   std::size_t index, const CellJob &job);
    void waitTicket(Ticket::State &ticket);
    void closeTicket(Ticket::State &ticket);
    std::shared_ptr<PairEntry> acquirePair(const SimOptions &options,
                                           const CellJob &job);
    void releasePair(const std::shared_ptr<PairEntry> &entry);

    std::size_t max_queue_cells_;
    std::size_t max_pairs_;

    mutable std::mutex m_;
    std::condition_variable work_cv_;  //!< signalled on submit/stop
    std::condition_variable space_cv_; //!< signalled on dequeue
    std::condition_variable done_cv_;  //!< signalled on job completion
    bool stop_ = false;
    /** Tickets with queued jobs, FIFO admission order; workers take
     *  one job from the front ticket and rotate it to the back. */
    std::deque<std::shared_ptr<Ticket::State>> ring_;
    /** Pair cache: identity string -> entry (see pairCacheKey). */
    std::unordered_map<std::string, std::shared_ptr<PairEntry>> pairs_;
    std::uint64_t lru_tick_ = 0;
    Stats stats_;

    std::vector<std::thread> workers_;
};

} // namespace atlb

#endif // ANCHORTLB_SERVE_SCHEDULER_HH
