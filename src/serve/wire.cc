#include "wire.hh"

#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace atlb
{

const JsonValue *
JsonValue::find(const std::string &name) const
{
    for (const auto &[key, value] : members) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

namespace
{

/** Nesting cap: a request line never needs more, and it bounds the
 *  recursive parser's stack on adversarial input. */
constexpr int maxJsonDepth = 32;

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool parse(JsonValue &out, std::string *error)
    {
        skipWs();
        if (!parseValue(out, 0))
            return failOut(error);
        skipWs();
        if (pos_ != s_.size()) {
            error_ = "trailing characters";
            return failOut(error);
        }
        return true;
    }

  private:
    bool failOut(std::string *error)
    {
        if (!error_.empty() && error) {
            *error = "json error at byte " + std::to_string(pos_) +
                     ": " + error_;
        }
        return error_.empty();
    }

    bool fail(const char *msg)
    {
        if (error_.empty())
            error_ = msg;
        return false;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
                s_[pos_] == '\n'))
            ++pos_;
    }

    bool eat(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > maxJsonDepth)
            return fail("nesting too deep");
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected member name");
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool hexDigit(std::uint32_t &out)
    {
        if (pos_ >= s_.size())
            return fail("truncated \\u escape");
        const char c = s_[pos_++];
        if (c >= '0' && c <= '9')
            out = out * 16 + static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            out = out * 16 + static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            out = out * 16 + static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return fail("bad \\u escape digit");
        return true;
    }

    bool parseUnicodeEscape(std::string &out)
    {
        std::uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            if (!hexDigit(code))
                return false;
        }
        if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: a low surrogate must follow.
            if (!eat('\\') || !eat('u'))
                return fail("lone high surrogate");
            std::uint32_t low = 0;
            for (int i = 0; i < 4; ++i) {
                if (!hexDigit(low))
                    return false;
            }
            if (low < 0xDC00 || low > 0xDFFF)
                return fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("lone low surrogate");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // '"'
        for (;;) {
            if (pos_ >= s_.size())
                return fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                return fail("truncated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u':
                if (!parseUnicodeEscape(out))
                    return false;
                break;
              default: return fail("bad escape character");
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (eat('-')) {
            // fall through to digits
        }
        if (pos_ >= s_.size() || !isDigit(s_[pos_]))
            return fail("expected a value");
        while (pos_ < s_.size() && isDigit(s_[pos_]))
            ++pos_;
        bool plain_integer = s_[start] != '-';
        if (pos_ < s_.size() && s_[pos_] == '.') {
            plain_integer = false;
            ++pos_;
            if (pos_ >= s_.size() || !isDigit(s_[pos_]))
                return fail("digits must follow '.'");
            while (pos_ < s_.size() && isDigit(s_[pos_]))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            plain_integer = false;
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (pos_ >= s_.size() || !isDigit(s_[pos_]))
                return fail("digits must follow exponent");
            while (pos_ < s_.size() && isDigit(s_[pos_]))
                ++pos_;
        }

        out.kind = JsonValue::Kind::Number;
        out.integer = false; // the target value may be reused
        const char *first = s_.data() + start;
        const char *last = s_.data() + pos_;
        if (plain_integer) {
            const auto [ptr, ec] = std::from_chars(first, last, out.u64);
            out.integer = ec == std::errc() && ptr == last;
        }
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec != std::errc() || ptr != last) {
            // from_chars can refuse only on overflow here; integers
            // beyond double's exact range still carry u64 above.
            if (!out.integer)
                return fail("unrepresentable number");
            value = static_cast<double>(out.u64);
        }
        out.number = value;
        return true;
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    const std::string &s_;
    std::size_t pos_ = 0;
    std::string error_;
};

/** Append `"key":` to @p out (with a leading comma unless first). */
void
appendKey(std::string &out, bool &first, const char *key)
{
    if (!first)
        out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(key);
    out.append("\":");
}

void
appendU64(std::string &out, bool &first, const char *key, std::uint64_t v)
{
    appendKey(out, first, key);
    out.append(std::to_string(v));
}

void
appendString(std::string &out, bool &first, const char *key,
             const std::string &v)
{
    appendKey(out, first, key);
    out.push_back('"');
    out.append(escapeJson(v));
    out.push_back('"');
}

/** Exact u64 member read: false when absent or not a plain integer. */
bool
getU64(const JsonValue &obj, const char *name, std::uint64_t &out)
{
    const JsonValue *v = obj.find(name);
    if (!v || v->kind != JsonValue::Kind::Number || !v->integer)
        return false;
    out = v->u64;
    return true;
}

bool
getString(const JsonValue &obj, const char *name, std::string &out)
{
    const JsonValue *v = obj.find(name);
    if (!v || v->kind != JsonValue::Kind::String)
        return false;
    out = v->text;
    return true;
}

/**
 * SimResult member emission. The double (instructions) crosses as its
 * bit pattern so the decoded struct is byte-identical to the encoded
 * one; the friendly float is also emitted, for humans reading the
 * wire, and ignored on decode.
 */
void
appendSimResult(std::string &out, bool &first, const SimResult &r)
{
    appendString(out, first, "workload", r.workload);
    appendString(out, first, "scenario", r.scenario);
    appendString(out, first, "scheme", r.scheme);
    appendU64(out, first, "anchor_distance", r.anchor_distance);
    appendU64(out, first, "accesses", r.stats.accesses);
    appendU64(out, first, "l1_hits", r.stats.l1_hits);
    appendU64(out, first, "l2_regular_hits", r.stats.l2_regular_hits);
    appendU64(out, first, "coalesced_hits", r.stats.coalesced_hits);
    appendU64(out, first, "page_walks", r.stats.page_walks);
    appendU64(out, first, "translation_cycles",
              r.stats.translation_cycles);
    appendU64(out, first, "shootdowns", r.stats.shootdowns);
    appendU64(out, first, "shootdown_cycles", r.stats.shootdown_cycles);
    appendU64(out, first, "instructions_bits",
              std::bit_cast<std::uint64_t>(r.instructions));
    appendU64(out, first, "l2_hit_cycles", r.l2_hit_cycles);
    appendU64(out, first, "coalesced_cycles", r.coalesced_cycles);
    appendU64(out, first, "walk_cycles", r.walk_cycles);
}

bool
simResultFromJson(const JsonValue &obj, SimResult &r)
{
    std::uint64_t instr_bits = 0;
    const bool ok =
        getString(obj, "workload", r.workload) &&
        getString(obj, "scenario", r.scenario) &&
        getString(obj, "scheme", r.scheme) &&
        getU64(obj, "anchor_distance", r.anchor_distance) &&
        getU64(obj, "accesses", r.stats.accesses) &&
        getU64(obj, "l1_hits", r.stats.l1_hits) &&
        getU64(obj, "l2_regular_hits", r.stats.l2_regular_hits) &&
        getU64(obj, "coalesced_hits", r.stats.coalesced_hits) &&
        getU64(obj, "page_walks", r.stats.page_walks) &&
        getU64(obj, "translation_cycles", r.stats.translation_cycles) &&
        getU64(obj, "shootdowns", r.stats.shootdowns) &&
        getU64(obj, "shootdown_cycles", r.stats.shootdown_cycles) &&
        getU64(obj, "instructions_bits", instr_bits) &&
        getU64(obj, "l2_hit_cycles", r.l2_hit_cycles) &&
        getU64(obj, "coalesced_cycles", r.coalesced_cycles) &&
        getU64(obj, "walk_cycles", r.walk_cycles);
    if (ok)
        r.instructions = std::bit_cast<double>(instr_bits);
    return ok;
}

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    return JsonParser(text).parse(out, error);
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out.append("\\\""); break;
          case '\\': out.append("\\\\"); break;
          case '\b': out.append("\\b"); break;
          case '\f': out.append("\\f"); break;
          case '\n': out.append("\\n"); break;
          case '\r': out.append("\\r"); break;
          case '\t': out.append("\\t"); break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out.append(buf);
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

bool
schemeFromWireName(const std::string &name, Scheme &out)
{
    for (const Scheme scheme : allSchemes) {
        if (name == schemeName(scheme)) {
            out = scheme;
            return true;
        }
    }
    return false;
}

bool
scenarioFromWireName(const std::string &name, ScenarioKind &out)
{
    for (const ScenarioKind kind : allScenarios) {
        if (name == scenarioName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

const char *
wireOpName(WireOp op)
{
    switch (op) {
      case WireOp::Submit: return "submit";
      case WireOp::Query: return "query";
      case WireOp::Stats: return "stats";
      case WireOp::Shutdown: return "shutdown";
    }
    return "?";
}

const char *
cellStatusName(CellStatus status)
{
    switch (status) {
      case CellStatus::Hit: return "hit";
      case CellStatus::Computed: return "computed";
      case CellStatus::Deduped: return "deduped";
      case CellStatus::Miss: return "miss";
      case CellStatus::Error: return "error";
    }
    return "?";
}

namespace
{

bool
wireOpFromName(const std::string &name, WireOp &out)
{
    for (const WireOp op : {WireOp::Submit, WireOp::Query, WireOp::Stats,
                            WireOp::Shutdown}) {
        if (name == wireOpName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

bool
cellStatusFromName(const std::string &name, CellStatus &out)
{
    for (const CellStatus status :
         {CellStatus::Hit, CellStatus::Computed, CellStatus::Deduped,
          CellStatus::Miss, CellStatus::Error}) {
        if (name == cellStatusName(status)) {
            out = status;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
encodeRequest(const SweepRequest &req)
{
    std::string out = "{";
    bool first = true;
    appendString(out, first, "op", wireOpName(req.op));
    if (req.accesses)
        appendU64(out, first, "accesses", *req.accesses);
    if (req.seed)
        appendU64(out, first, "seed", *req.seed);
    if (req.shards)
        appendU64(out, first, "shards", *req.shards);
    if (req.warmup)
        appendU64(out, first, "warmup", *req.warmup);
    if (req.scale) {
        appendU64(out, first, "scale_bits",
                  std::bit_cast<std::uint64_t>(*req.scale));
    }
    if (!req.cells.empty()) {
        appendKey(out, first, "cells");
        out.push_back('[');
        bool first_cell = true;
        for (const CellRequest &cell : req.cells) {
            if (!first_cell)
                out.push_back(',');
            first_cell = false;
            out.push_back('{');
            bool f = true;
            appendString(out, f, "workload", cell.workload);
            appendString(out, f, "scenario",
                         scenarioName(cell.scenario));
            appendString(out, f, "scheme", schemeName(cell.scheme));
            if (cell.distance)
                appendU64(out, f, "distance", *cell.distance);
            out.push_back('}');
        }
        out.push_back(']');
    }
    out.push_back('}');
    return out;
}

bool
decodeRequest(const std::string &line, SweepRequest &out,
              std::string *error)
{
    const auto bad = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    JsonValue doc;
    if (!parseJson(line, doc, error))
        return false;
    if (doc.kind != JsonValue::Kind::Object)
        return bad("request must be a JSON object");

    std::string op_name;
    if (!getString(doc, "op", op_name))
        return bad("missing 'op'");
    if (!wireOpFromName(op_name, out.op))
        return bad("unknown op '" + op_name + "'");

    std::uint64_t u = 0;
    if (getU64(doc, "accesses", u))
        out.accesses = u;
    if (getU64(doc, "seed", u))
        out.seed = u;
    if (getU64(doc, "shards", u))
        out.shards = u;
    if (getU64(doc, "warmup", u))
        out.warmup = u;
    if (getU64(doc, "scale_bits", u))
        out.scale = std::bit_cast<double>(u);

    const JsonValue *cells = doc.find("cells");
    if (!cells)
        return true;
    if (cells->kind != JsonValue::Kind::Array)
        return bad("'cells' must be an array");
    for (const JsonValue &item : cells->items) {
        if (item.kind != JsonValue::Kind::Object)
            return bad("each cell must be an object");
        CellRequest cell;
        std::string scenario;
        std::string scheme;
        if (!getString(item, "workload", cell.workload) ||
            !getString(item, "scenario", scenario) ||
            !getString(item, "scheme", scheme))
            return bad("cell needs workload/scenario/scheme strings");
        if (!scenarioFromWireName(scenario, cell.scenario))
            return bad("unknown scenario '" + scenario + "'");
        if (!schemeFromWireName(scheme, cell.scheme))
            return bad("unknown scheme '" + scheme + "'");
        if (getU64(item, "distance", u))
            cell.distance = u;
        out.cells.push_back(std::move(cell));
    }
    return true;
}

std::string
encodeResponse(const SweepResponse &resp)
{
    std::string out = "{";
    bool first = true;
    appendKey(out, first, "ok");
    out.append(resp.ok ? "true" : "false");
    if (!resp.error.empty())
        appendString(out, first, "error", resp.error);
    if (!resp.cells.empty()) {
        appendKey(out, first, "cells");
        out.push_back('[');
        bool first_cell = true;
        for (const CellReply &cell : resp.cells) {
            if (!first_cell)
                out.push_back(',');
            first_cell = false;
            out.push_back('{');
            bool f = true;
            appendString(out, f, "status", cellStatusName(cell.status));
            if (!cell.error.empty())
                appendString(out, f, "error", cell.error);
            appendU64(out, f, "key", cell.key);
            if (cell.status == CellStatus::Hit ||
                cell.status == CellStatus::Computed ||
                cell.status == CellStatus::Deduped)
                appendSimResult(out, f, cell.result);
            out.push_back('}');
        }
        out.push_back(']');
    }
    if (!resp.counters.empty()) {
        appendKey(out, first, "counters");
        out.push_back('{');
        bool first_counter = true;
        for (const auto &[name, value] : resp.counters)
            appendU64(out, first_counter, name.c_str(), value);
        out.push_back('}');
    }
    out.push_back('}');
    return out;
}

bool
decodeResponse(const std::string &line, SweepResponse &out,
               std::string *error)
{
    const auto bad = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    JsonValue doc;
    if (!parseJson(line, doc, error))
        return false;
    if (doc.kind != JsonValue::Kind::Object)
        return bad("response must be a JSON object");

    const JsonValue *ok = doc.find("ok");
    if (!ok || ok->kind != JsonValue::Kind::Bool)
        return bad("missing 'ok'");
    out.ok = ok->boolean;
    getString(doc, "error", out.error);

    if (const JsonValue *cells = doc.find("cells")) {
        if (cells->kind != JsonValue::Kind::Array)
            return bad("'cells' must be an array");
        for (const JsonValue &item : cells->items) {
            if (item.kind != JsonValue::Kind::Object)
                return bad("each cell must be an object");
            CellReply cell;
            std::string status;
            if (!getString(item, "status", status) ||
                !cellStatusFromName(status, cell.status))
                return bad("cell needs a valid 'status'");
            getString(item, "error", cell.error);
            if (!getU64(item, "key", cell.key))
                return bad("cell needs 'key'");
            if ((cell.status == CellStatus::Hit ||
                 cell.status == CellStatus::Computed ||
                 cell.status == CellStatus::Deduped) &&
                !simResultFromJson(item, cell.result))
                return bad("cell result fields missing or malformed");
            out.cells.push_back(std::move(cell));
        }
    }

    if (const JsonValue *counters = doc.find("counters")) {
        if (counters->kind != JsonValue::Kind::Object)
            return bad("'counters' must be an object");
        for (const auto &[name, value] : counters->members) {
            if (value.kind != JsonValue::Kind::Number || !value.integer)
                return bad("counters must be integers");
            out.counters.emplace_back(name, value.u64);
        }
    }
    return true;
}

} // namespace atlb
