#include "server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/parallel_runner.hh"
#include "trace/workload.hh"

namespace atlb
{

namespace
{

/** Accept/read poll granularity: how often the stop flag is observed. */
constexpr int pollTimeoutMs = 200;

/** Request-line cap: a grid request is KBs; beyond this is abuse. */
constexpr std::size_t maxLineBytes = 16 * 1024 * 1024;

/** Workload-name prefix selecting a trace-driven workload. */
constexpr const char *traceWorkloadPrefixServe = "trace:";

/** Microseconds elapsed since @p start. */
std::uint64_t
elapsedUsSince(std::chrono::steady_clock::time_point start)
{
    const auto delta = std::chrono::steady_clock::now() - start;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

/**
 * Non-fatal workload validation + trace content hash. Synthetic names
 * must be in the catalog; "trace:<path>" must name a readable file
 * (its content hash feeds the cell key). Returns false with a
 * diagnostic for anything else — a request must never be able to
 * crash the server through a bad name.
 */
bool
validateWorkload(const std::string &workload, std::uint64_t &trace_hash,
                 std::string &error)
{
    trace_hash = 0;
    if (workload.rfind(traceWorkloadPrefixServe, 0) == 0) {
        const std::string path =
            workload.substr(std::strlen(traceWorkloadPrefixServe));
        if (!fnv1a64File(path, trace_hash)) {
            error = "trace file '" + path + "' is not readable";
            return false;
        }
        return true;
    }
    for (const WorkloadSpec &spec : workloadCatalog()) {
        if (spec.name == workload)
            return true;
    }
    error = "unknown workload '" + workload + "'";
    return false;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

SweepServer::SweepServer(ServeOptions options)
    : options_(std::move(options)), store_(options_.store_path),
      scheduler_(options_.base.threads, options_.max_queue_cells,
                 options_.max_pairs)
{
}

SweepServer::~SweepServer()
{
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

bool
SweepServer::start(std::string *error)
{
    const auto fail = [this, error](const std::string &msg) {
        if (error)
            *error = msg + " (" + std::strerror(errno) + ")";
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error) {
            *error = "socket path '" + options_.socket_path +
                     "' is too long for AF_UNIX";
        }
        return false;
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        return fail("cannot create socket");
    // A stale socket file from a dead server would make bind fail;
    // this server owns the path, so reclaim it.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("cannot bind '" + options_.socket_path + "'");
    if (::listen(listen_fd_, 16) != 0)
        return fail("cannot listen on '" + options_.socket_path + "'");
    return true;
}

void
SweepServer::run()
{
    ATLB_ASSERT(listen_fd_ >= 0, "run() before start()");

    while (!stopping()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, pollTimeoutMs);
        if (ready <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        {
            const std::lock_guard<std::mutex> lock(state_m_);
            ++counters_.connections;
        }
        const std::lock_guard<std::mutex> lock(threads_m_);
        threads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }

    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());

    const std::lock_guard<std::mutex> lock(threads_m_);
    for (std::thread &t : threads_)
        t.join();
    threads_.clear();
}

void
SweepServer::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];

    while (!stopping()) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, pollTimeoutMs);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0)
            continue;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // EOF or error: client is gone
        buf.append(chunk, static_cast<std::size_t>(n));
        if (buf.size() > maxLineBytes)
            break; // unterminated oversized line: refuse

        std::size_t newline = 0;
        while ((newline = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, newline);
            buf.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (!sendAll(fd, handleLine(line) + "\n")) {
                ::close(fd);
                return;
            }
        }
    }
    ::close(fd);
}

std::string
SweepServer::handleLine(const std::string &line)
{
    SweepRequest request;
    std::string error;
    if (!decodeRequest(line, request, &error)) {
        {
            const std::lock_guard<std::mutex> lock(state_m_);
            ++counters_.bad_requests;
        }
        SweepResponse resp;
        resp.ok = false;
        resp.error = error.empty() ? "malformed request" : error;
        appendCounters(resp);
        return encodeResponse(resp);
    }
    {
        const std::lock_guard<std::mutex> lock(state_m_);
        ++counters_.requests;
    }
    return encodeResponse(handleRequest(request));
}

SweepResponse
SweepServer::handleRequest(const SweepRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    SweepResponse resp;
    switch (request.op) {
      case WireOp::Stats:
        resp.ok = true;
        break;
      case WireOp::Shutdown:
        resp.ok = true;
        requestStop();
        break;
      case WireOp::Submit:
      case WireOp::Query:
        resolveCells(request, resp);
        break;
    }
    {
        // Recorded before the counters are attached, so every reply's
        // wall-time summary includes the request it answers.
        const std::lock_guard<std::mutex> lock(state_m_);
        counters_.request_wall_us.add(elapsedUsSince(start));
    }
    appendCounters(resp);
    return resp;
}

void
SweepServer::resolveCells(const SweepRequest &request,
                          SweepResponse &resp)
{
    SimOptions opts = options_.base;
    if (request.accesses)
        opts.accesses = *request.accesses;
    if (request.seed)
        opts.seed = *request.seed;
    if (request.shards)
        opts.shards = static_cast<unsigned>(*request.shards);
    if (request.warmup)
        opts.shard_warmup = *request.warmup;
    if (request.scale)
        opts.footprint_scale = *request.scale;
    if (opts.accesses == 0 || opts.shards == 0 ||
        opts.footprint_scale <= 0.0 || opts.footprint_scale > 1.0) {
        resp.ok = false;
        resp.error = "invalid options: accesses and shards must be "
                     "positive, scale in (0, 1]";
        return;
    }

    resp.cells.resize(request.cells.size());

    // Tier 1: validate, address, and answer from the store. Cells the
    // store misses are either claimed (this request computes them) or
    // joined (an identical cell is already in flight elsewhere).
    struct PendingCell
    {
        std::size_t index = 0;
        CellKey key;
        std::shared_ptr<Inflight> entry;
    };
    std::vector<PendingCell> owned;
    std::vector<PendingCell> joined;
    // One request hashes each distinct trace file once.
    std::unordered_map<std::string, std::uint64_t> trace_hashes;

    for (std::size_t i = 0; i < request.cells.size(); ++i) {
        const CellRequest &cell = request.cells[i];
        CellReply &reply = resp.cells[i];
        {
            const std::lock_guard<std::mutex> lock(state_m_);
            ++counters_.cells;
        }

        std::uint64_t trace_hash = 0;
        const auto memo = trace_hashes.find(cell.workload);
        if (memo != trace_hashes.end()) {
            trace_hash = memo->second;
        } else {
            std::string error;
            if (!validateWorkload(cell.workload, trace_hash, error)) {
                reply.status = CellStatus::Error;
                reply.error = error;
                const std::lock_guard<std::mutex> lock(state_m_);
                ++counters_.cell_errors;
                continue;
            }
            trace_hashes.emplace(cell.workload, trace_hash);
        }

        const CellKey key = cellKeyFor(
            opts,
            CellSpec{cell.workload, cell.scenario, cell.scheme,
                     cell.distance},
            trace_hash);
        reply.key = key.raw();

        if (std::optional<SimResult> cached = store_.lookup(key)) {
            reply.status = CellStatus::Hit;
            reply.result = *std::move(cached);
            const std::lock_guard<std::mutex> lock(state_m_);
            ++counters_.hits;
            continue;
        }
        if (request.op == WireOp::Query) {
            reply.status = CellStatus::Miss;
            continue;
        }

        const std::lock_guard<std::mutex> lock(state_m_);
        const auto inflight = inflight_.find(key.raw());
        if (inflight != inflight_.end()) {
            ++counters_.dedups;
            joined.push_back({i, key, inflight->second});
        } else {
            auto entry = std::make_shared<Inflight>();
            inflight_.emplace(key.raw(), entry);
            owned.push_back({i, key, std::move(entry)});
        }
    }

    // Tier 3: the claimed misses become individual jobs on the shared
    // scheduler, sorted by (workload, scenario) so this request's
    // consecutive cells reuse one scheduler pair-state build. Each cell
    // publishes — store append, Inflight wake-up, reply slot — the
    // moment its worker finishes, so waiters never wait on the whole
    // grid.
    if (!owned.empty()) {
        std::vector<std::size_t> order(owned.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const CellRequest &ca =
                          request.cells[owned[a].index];
                      const CellRequest &cb =
                          request.cells[owned[b].index];
                      if (ca.workload != cb.workload)
                          return ca.workload < cb.workload;
                      return ca.scenario < cb.scenario;
                  });

        // Runs on scheduler workers. Writing resp is race-free: the
        // ticket's wait() below returns only after every completion has
        // run, and this thread touches no owned slot until then.
        const auto publish = [this, &resp, &owned](
                                 std::size_t slot,
                                 const SimResult &result,
                                 std::uint64_t queue_wait_us) {
            PendingCell &pending = owned[slot];
            store_.store(pending.key, result);
            {
                const std::lock_guard<std::mutex> entry_lock(
                    pending.entry->m);
                pending.entry->done = true;
                pending.entry->result = result;
            }
            pending.entry->cv.notify_all();
            CellReply &reply = resp.cells[pending.index];
            reply.status = CellStatus::Computed;
            reply.result = result;
            const std::lock_guard<std::mutex> lock(state_m_);
            inflight_.erase(pending.key.raw());
            ++counters_.simulations;
            counters_.queue_wait_us.add(queue_wait_us);
        };

        const std::unique_ptr<CellScheduler::Ticket> ticket =
            scheduler_.open(opts, publish);
        for (const std::size_t slot : order) {
            const CellRequest &cell = request.cells[owned[slot].index];
            ticket->submit(slot, CellJob{cell.workload, cell.scenario,
                                         cell.scheme, cell.distance});
        }
        ticket->wait();
    }

    // Tier 2 resolution: join the in-flight computations. This comes
    // after our own batch published, so two requests can wait on each
    // other's cells without deadlock — publishes never depend on waits.
    for (PendingCell &pending : joined) {
        std::unique_lock<std::mutex> entry_lock(pending.entry->m);
        pending.entry->cv.wait(entry_lock,
                               [&] { return pending.entry->done; });
        CellReply &reply = resp.cells[pending.index];
        reply.status = CellStatus::Deduped;
        reply.result = pending.entry->result;
    }

    resp.ok = true;
}

void
SweepServer::appendCounters(SweepResponse &resp) const
{
    ServerCounters c;
    {
        const std::lock_guard<std::mutex> lock(state_m_);
        c = counters_;
    }
    const CellScheduler::Stats ss = scheduler_.stats();
    resp.counters.emplace_back("connections", c.connections);
    resp.counters.emplace_back("requests", c.requests);
    resp.counters.emplace_back("bad_requests", c.bad_requests);
    resp.counters.emplace_back("cells", c.cells);
    resp.counters.emplace_back("hits", c.hits);
    resp.counters.emplace_back("dedups", c.dedups);
    resp.counters.emplace_back("simulations", c.simulations);
    resp.counters.emplace_back("cell_errors", c.cell_errors);
    resp.counters.emplace_back("queue_peak", ss.depth_peak);
    resp.counters.emplace_back("admission_stalls", ss.admission_stalls);
    resp.counters.emplace_back("sched_depth", ss.depth);
    resp.counters.emplace_back("sched_running", ss.running);
    resp.counters.emplace_back("sched_tickets_open", ss.tickets_open);
    resp.counters.emplace_back("sched_pair_builds", ss.pair_builds);
    resp.counters.emplace_back("sched_pair_reuses", ss.pair_reuses);
    resp.counters.emplace_back("sched_pairs_cached", ss.pairs_cached);
    resp.counters.emplace_back("request_wall_us_count",
                               c.request_wall_us.samples());
    resp.counters.emplace_back("request_wall_us_p50",
                               c.request_wall_us.quantile(0.5));
    resp.counters.emplace_back("request_wall_us_p99",
                               c.request_wall_us.quantile(0.99));
    resp.counters.emplace_back("request_wall_us_max",
                               c.request_wall_us.maxValue());
    resp.counters.emplace_back("queue_wait_us_count",
                               c.queue_wait_us.samples());
    resp.counters.emplace_back("queue_wait_us_p50",
                               c.queue_wait_us.quantile(0.5));
    resp.counters.emplace_back("queue_wait_us_p99",
                               c.queue_wait_us.quantile(0.99));
    resp.counters.emplace_back("queue_wait_us_max",
                               c.queue_wait_us.maxValue());

    const ResultStore::Counters sc = store_.counters();
    resp.counters.emplace_back("store_lookups", sc.lookups);
    resp.counters.emplace_back("store_hits", sc.hits);
    resp.counters.emplace_back("store_appends", sc.appends);
    resp.counters.emplace_back("store_corrupt_dropped",
                               sc.corrupt_dropped);
    const ResultStore::Info si = store_.info();
    resp.counters.emplace_back("store_live_cells", si.live_cells);
    resp.counters.emplace_back("store_records", si.records);
    resp.counters.emplace_back("store_file_bytes", si.file_bytes);
}

ServerCounters
SweepServer::counters() const
{
    ServerCounters c;
    {
        const std::lock_guard<std::mutex> lock(state_m_);
        c = counters_;
    }
    const CellScheduler::Stats ss = scheduler_.stats();
    c.queue_peak = ss.depth_peak;
    c.admission_stalls = ss.admission_stalls;
    return c;
}

CellScheduler::Stats
SweepServer::schedulerStats() const
{
    return scheduler_.stats();
}

ResultStore::Counters
SweepServer::storeCounters() const
{
    return store_.counters();
}

ResultStore::Info
SweepServer::storeInfo() const
{
    return store_.info();
}

} // namespace atlb
