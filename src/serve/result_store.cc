#include "result_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace atlb
{

namespace
{

constexpr char storeMagic[8] = {'A', 'T', 'L', 'B', 'R', 'E', 'S', '1'};

constexpr std::uint8_t recordResult = 1;
constexpr std::uint8_t recordTombstone = 2;

/** u32 len + u8 kind + 3 reserved + u64 key + u64 checksum. */
constexpr std::size_t recordHeaderBytes = 24;

/**
 * Payload cap: an encoded SimResult is a few hundred bytes; a length
 * beyond this is corruption, not a record, and must not drive a
 * gigabyte allocation during replay.
 */
constexpr std::uint32_t maxPayloadBytes = 1 << 20;

std::uint64_t
readU64At(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
readU32At(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::string
encodeSimResult(const SimResult &result)
{
    ByteWriter w;
    w.putString(result.workload);
    w.putString(result.scenario);
    w.putString(result.scheme);
    w.putU64(result.anchor_distance);
    w.putU64(result.stats.accesses);
    w.putU64(result.stats.l1_hits);
    w.putU64(result.stats.l2_regular_hits);
    w.putU64(result.stats.coalesced_hits);
    w.putU64(result.stats.page_walks);
    w.putU64(result.stats.translation_cycles);
    w.putU64(result.stats.shootdowns);
    w.putU64(result.stats.shootdown_cycles);
    w.putDouble(result.instructions);
    w.putU64(result.l2_hit_cycles);
    w.putU64(result.coalesced_cycles);
    w.putU64(result.walk_cycles);
    return w.bytes();
}

bool
decodeSimResult(const std::string &payload, SimResult &out)
{
    ByteReader r(payload);
    out.workload = r.getString();
    out.scenario = r.getString();
    out.scheme = r.getString();
    out.anchor_distance = r.getU64();
    out.stats.accesses = r.getU64();
    out.stats.l1_hits = r.getU64();
    out.stats.l2_regular_hits = r.getU64();
    out.stats.coalesced_hits = r.getU64();
    out.stats.page_walks = r.getU64();
    out.stats.translation_cycles = r.getU64();
    out.stats.shootdowns = r.getU64();
    out.stats.shootdown_cycles = r.getU64();
    out.instructions = r.getDouble();
    out.l2_hit_cycles = r.getU64();
    out.coalesced_cycles = r.getU64();
    out.walk_cycles = r.getU64();
    return r.atEnd();
}

ResultStore::ResultStore(const std::string &path) : path_(path)
{
    acquireLock();
    openAndReplay();
}

ResultStore::~ResultStore()
{
    if (lock_fd_ >= 0)
        ::close(lock_fd_); // releases the flock
}

void
ResultStore::acquireLock()
{
    // The lock must live in a sidecar: gc() renames a fresh file over
    // path_, and a lock on the data file itself would silently travel
    // to the orphaned pre-gc inode.
    const std::string lock_path = path_ + ".lock";
    lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                      0644);
    if (lock_fd_ < 0)
        ATLB_FATAL("cannot open store lock '{}'", lock_path);
    if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
        ::close(lock_fd_);
        lock_fd_ = -1;
        ATLB_FATAL("result store '{}' is in use by another process "
                   "(a running server?) -- stop it before touching "
                   "the store",
                   path_);
    }
}

void
ResultStore::openAndReplay()
{
    namespace fs = std::filesystem;

    if (!fs::exists(path_)) {
        std::ofstream out(path_, std::ios::binary);
        if (!out)
            ATLB_FATAL("cannot create result store '{}'", path_);
        out.write(storeMagic, sizeof(storeMagic));
        if (!out.flush())
            ATLB_FATAL("cannot write result store '{}'", path_);
        return;
    }

    std::ifstream in(path_, std::ios::binary);
    if (!in)
        ATLB_FATAL("cannot open result store '{}'", path_);
    std::vector<unsigned char> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    in.close();

    if (data.size() < sizeof(storeMagic)) {
        // The magic itself was torn: an empty store, tail dropped.
        ++counters_.corrupt_dropped;
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        if (!out)
            ATLB_FATAL("cannot rewrite result store '{}'", path_);
        out.write(storeMagic, sizeof(storeMagic));
        if (!out.flush())
            ATLB_FATAL("cannot write result store '{}'", path_);
        return;
    }
    if (std::memcmp(data.data(), storeMagic, sizeof(storeMagic)) != 0) {
        // Not a torn write — a different file. Refuse to touch it.
        ATLB_FATAL("'{}' is not a result store (bad magic)", path_);
    }

    std::size_t pos = sizeof(storeMagic);
    std::size_t good_end = pos;
    bool corrupt = false;
    while (pos < data.size()) {
        if (data.size() - pos < recordHeaderBytes) {
            corrupt = true;
            break;
        }
        const unsigned char *head = data.data() + pos;
        const std::uint32_t len = readU32At(head);
        const std::uint8_t kind = head[4];
        const std::uint64_t key = readU64At(head + 8);
        const std::uint64_t checksum = readU64At(head + 16);
        if (len > maxPayloadBytes ||
            data.size() - pos - recordHeaderBytes < len) {
            corrupt = true;
            break;
        }
        const char *payload_bytes = reinterpret_cast<const char *>(
            head + recordHeaderBytes);
        if (fnv1a64(payload_bytes, len) != checksum) {
            corrupt = true;
            break;
        }
        const std::string payload(payload_bytes, len);
        if (kind == recordResult) {
            SimResult result;
            if (!decodeSimResult(payload, result)) {
                corrupt = true;
                break;
            }
            cells_[key] = std::move(result);
        } else if (kind == recordTombstone) {
            cells_.erase(key);
        } else {
            corrupt = true; // unknown kind: not ours
            break;
        }
        pos += recordHeaderBytes + len;
        good_end = pos;
        ++records_;
    }

    if (corrupt) {
        // Drop the torn tail so future appends extend an intact log.
        ++counters_.corrupt_dropped;
        std::error_code ec;
        std::filesystem::resize_file(path_, good_end, ec);
        if (ec)
            ATLB_FATAL("cannot truncate corrupt tail of '{}': {}", path_,
                       ec.message());
    }
}

void
ResultStore::appendRecord(std::uint8_t kind, CellKey key,
                          const std::string &payload)
{
    ATLB_ASSERT(payload.size() <= maxPayloadBytes,
                "result store payload too large");
    std::string record;
    record.reserve(recordHeaderBytes + payload.size());
    const auto put_u32 = [&record](std::uint32_t v) {
        for (unsigned i = 0; i < 4; ++i)
            record.push_back(static_cast<char>(v >> (8 * i)));
    };
    const auto put_u64 = [&record](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i)
            record.push_back(static_cast<char>(v >> (8 * i)));
    };
    put_u32(static_cast<std::uint32_t>(payload.size()));
    record.push_back(static_cast<char>(kind));
    record.append(3, '\0');
    put_u64(key.raw());
    put_u64(fnv1a64(payload.data(), payload.size()));
    record.append(payload);

    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out)
        ATLB_FATAL("cannot append to result store '{}'", path_);
    out.write(record.data(),
              static_cast<std::streamsize>(record.size()));
    if (!out.flush())
        ATLB_FATAL("cannot write result store '{}'", path_);
    ++records_;
}

std::optional<SimResult>
ResultStore::lookup(CellKey key)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.lookups;
    const auto it = cells_.find(key.raw());
    if (it == cells_.end())
        return std::nullopt;
    ++counters_.hits;
    return it->second;
}

void
ResultStore::store(CellKey key, const SimResult &result)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    appendRecord(recordResult, key, encodeSimResult(result));
    cells_[key.raw()] = result;
    ++counters_.appends;
}

void
ResultStore::invalidate(CellKey key)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    appendRecord(recordTombstone, key, std::string());
    cells_.erase(key.raw());
    ++counters_.invalidations;
}

std::uint64_t
ResultStore::gc()
{
    const std::lock_guard<std::mutex> lock(mutex_);

    const std::string tmp = path_ + ".gc-tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            ATLB_FATAL("cannot write '{}' for store gc", tmp);
        out.write(storeMagic, sizeof(storeMagic));
        if (!out.flush())
            ATLB_FATAL("cannot write '{}' for store gc", tmp);
    }

    // Re-append every live cell into the fresh file, then swap it in.
    const std::string full = std::move(path_);
    path_ = tmp;
    const std::uint64_t before = records_;
    records_ = 0;
    for (const auto &[key, result] : cells_)
        appendRecord(recordResult, CellKey{key}, encodeSimResult(result));
    path_ = full;

    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (ec)
        ATLB_FATAL("cannot replace '{}' with gc'd store: {}", path_,
                   ec.message());

    const std::uint64_t evicted = before - records_;
    counters_.gc_evicted += evicted;
    return evicted;
}

ResultStore::Counters
ResultStore::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

ResultStore::Info
ResultStore::info() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Info info;
    info.path = path_;
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path_, ec);
    info.file_bytes = ec ? 0 : static_cast<std::uint64_t>(bytes);
    info.live_cells = cells_.size();
    info.records = records_;
    return info;
}

} // namespace atlb
