/**
 * @file
 * Line-delimited JSON wire protocol of the sweep service.
 *
 * One request is one line of JSON; the reply is one line back. The
 * protocol carries four operations:
 *
 *   submit    resolve each cell from the store, computing misses
 *   query     resolve from the store only (a miss is answered "miss")
 *   stats     report server + store counters without touching cells
 *   shutdown  reply, then stop the server cleanly
 *
 * Counters travel on every reply, so a client always sees how its
 * request was satisfied (hits vs simulations vs in-flight dedups).
 * SimResult crosses the wire with integer counters verbatim and the
 * one double (instructions) as its IEEE-754 bit pattern, so a result
 * read back from the service is byte-identical to the direct
 * ExperimentContext run — the property tests/serve pins.
 *
 * The parser below is deliberately tiny (objects, arrays, strings,
 * numbers, bools, null — no external dependency) and non-fatal: a
 * malformed line poisons that request with an error reply, never the
 * server.
 */

#ifndef ANCHORTLB_SERVE_WIRE_HH
#define ANCHORTLB_SERVE_WIRE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "os/scenario.hh"
#include "sim/scheme.hh"
#include "sim/simulator.hh"

namespace atlb
{

/** One parsed JSON node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Numeric value (always set for Kind::Number). */
    double number = 0.0;
    /** Exact unsigned value; valid only when integer is true. */
    std::uint64_t u64 = 0;
    /** True when the number was a plain non-negative integer. */
    bool integer = false;
    std::string text; //!< Kind::String payload
    std::vector<JsonValue> items;                           //!< Array
    std::vector<std::pair<std::string, JsonValue>> members; //!< Object

    /** Member @p name of an object, or nullptr. */
    const JsonValue *find(const std::string &name) const;
};

/**
 * Parse one JSON document. Returns false (with a position-carrying
 * message in @p error, if non-null) on malformed input; never fatal.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error);

/** @p s with JSON string escapes applied (quotes not included). */
std::string escapeJson(const std::string &s);

/** Non-fatal Scheme lookup by paper legend name ("Base", "THP", ...). */
bool schemeFromWireName(const std::string &name, Scheme &out);

/** Non-fatal ScenarioKind lookup by display name ("demand", ...). */
bool scenarioFromWireName(const std::string &name, ScenarioKind &out);

/** The operations a request line can carry. */
enum class WireOp
{
    Submit,   //!< resolve cells, simulating misses
    Query,    //!< resolve cells from the store only
    Stats,    //!< counters only
    Shutdown, //!< reply, then stop the server
};

/** Wire name of @p op ("submit", "query", ...). */
const char *wireOpName(WireOp op);

/** One cell of a submit/query request. */
struct CellRequest
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::Demand;
    Scheme scheme = Scheme::Base;
    /** Anchor distance override (Scheme::Anchor only). */
    std::optional<std::uint64_t> distance;
};

/** One request line. */
struct SweepRequest
{
    WireOp op = WireOp::Submit;
    std::vector<CellRequest> cells;
    // Optional overrides of the server's base SimOptions. Absent
    // fields keep the server's values, so a client and a local run
    // with the same explicit knobs address the same cells.
    std::optional<std::uint64_t> accesses;
    std::optional<std::uint64_t> seed;
    std::optional<std::uint64_t> shards;
    std::optional<std::uint64_t> warmup;
    std::optional<double> scale;
};

/** How one cell of a reply was satisfied. */
enum class CellStatus
{
    Hit,      //!< answered from the persistent store
    Computed, //!< simulated by this request
    Deduped,  //!< waited on an identical in-flight computation
    Miss,     //!< query-only: not in the store
    Error,    //!< invalid cell (unknown workload/scenario/scheme)
};

/** Wire name of @p status ("hit", "computed", ...). */
const char *cellStatusName(CellStatus status);

/** One cell of a reply. */
struct CellReply
{
    CellStatus status = CellStatus::Error;
    std::string error;      //!< CellStatus::Error diagnostic
    std::uint64_t key = 0;  //!< the cell's content address
    SimResult result;       //!< valid unless Miss/Error
};

/** One reply line. */
struct SweepResponse
{
    bool ok = false;
    std::string error; //!< request-level failure (when !ok)
    std::vector<CellReply> cells;
    /** Server + store counters, in emission order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** Encode @p req as one line (no trailing newline). */
std::string encodeRequest(const SweepRequest &req);

/** Decode a request line; false + @p error on malformed input. */
bool decodeRequest(const std::string &line, SweepRequest &out,
                   std::string *error);

/** Encode @p resp as one line (no trailing newline). */
std::string encodeResponse(const SweepResponse &resp);

/** Decode a reply line; false + @p error on malformed input. */
bool decodeResponse(const std::string &line, SweepResponse &out,
                    std::string *error);

} // namespace atlb

#endif // ANCHORTLB_SERVE_WIRE_HH
