/**
 * @file
 * Strong address and page types shared by every module.
 *
 * The simulator models an x86-64-like virtual memory system with 4KB base
 * pages and 2MB huge pages. Four *distinct wrapper types* — VirtAddr,
 * PhysAddr (byte addresses) and Vpn, Ppn (page numbers) — make the
 * classic mix-ups unrepresentable at compile time: a VPN can no longer be
 * passed where a PPN is expected, nor a byte address where a page number
 * is expected. The wrappers are zero-cost: a single std::uint64_t,
 * trivially copyable, with every operation constexpr and inline, so
 * optimised code is bit-identical to the old plain-integer aliases (the
 * static_asserts at the bottom of this header pin the layout).
 *
 * Conversions between the domains are *named and explicit* and live in
 * this header so every crossing is auditable: vpnOf/vaOf, ppnOf/paOf,
 * pageOffset, and the TlbKey constructors (pageKey/hugeKey/giantKey/
 * groupKey). Raw access is the .raw() escape hatch; code outside this
 * header and bitops.hh should not shift or mask page numbers directly
 * (tools/anchortlb_lint enforces this).
 *
 * Each type supports only the arithmetic that is meaningful for it:
 *
 *  - Vpn/Ppn:      ordered; +/- a page count; Vpn - Vpn = PageCount
 *                  (never Vpn + Vpn, never Vpn - Ppn);
 *                  alignDown/offsetIn for power-of-two spans.
 *  - VirtAddr/PhysAddr: ordered; +/- a byte count; diff in bytes.
 *  - PageCount:    a count of 4KB pages. Explicit to construct from a
 *                  raw integer, but decays implicitly *to* one: a count
 *                  is just a number, the danger is only in minting one
 *                  from the wrong domain (addresses never convert).
 *  - TlbKey:       a granularity-shifted TLB tag; only comparable.
 *  - AnchorDist:   an anchor distance, carrying its page count and its
 *                  log2 together so the pages-vs-log2 slip cannot
 *                  happen; construction checks the power-of-two range.
 */

#ifndef ANCHORTLB_COMMON_TYPES_HH
#define ANCHORTLB_COMMON_TYPES_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace atlb
{

/** Simulation cycle count. */
using Cycles = std::uint64_t;

/** log2 of the base page size (4KB pages). */
constexpr unsigned pageShift = 12;
/** Base page size in bytes. */
constexpr std::uint64_t pageBytes = 1ULL << pageShift;
/** Number of base pages per 2MB huge page. */
constexpr std::uint64_t hugePages = 512;
/** log2 of the number of base pages per huge page. */
constexpr unsigned hugeShift = 9;
/** Huge (2MB) page size in bytes. */
constexpr std::uint64_t hugeBytes = pageBytes * hugePages;

/** Number of base pages per 1GB giant page. */
constexpr std::uint64_t giantPages = 512 * 512;
/** log2 of the number of base pages per giant page. */
constexpr unsigned giantShift = 18;
/** Giant (1GB) page size in bytes. */
constexpr std::uint64_t giantBytes = pageBytes * giantPages;

/**
 * A count of 4KB pages (a *length*, never a position).
 *
 * Construction from a raw integer is explicit — the mistakes worth
 * preventing mint a count out of the wrong domain (a byte size, an
 * address) — but a PageCount decays implicitly to std::uint64_t so
 * counts participate in ordinary arithmetic, indexing and comparisons
 * without ceremony. Positions (Vpn/Ppn/addresses) never decay.
 */
class PageCount
{
  public:
    constexpr PageCount() = default;
    constexpr explicit PageCount(std::uint64_t pages) : n_(pages) {}

    /** The raw count (same value the implicit conversion yields). */
    constexpr std::uint64_t raw() const { return n_; }
    constexpr operator std::uint64_t() const { return n_; } // NOLINT

    friend constexpr bool operator==(PageCount a, PageCount b)
    {
        return a.n_ == b.n_;
    }
    friend constexpr auto operator<=>(PageCount a, PageCount b)
    {
        return a.n_ <=> b.n_;
    }

    constexpr PageCount operator+(PageCount o) const
    {
        return PageCount{n_ + o.n_};
    }
    constexpr PageCount operator-(PageCount o) const
    {
        return PageCount{n_ - o.n_};
    }
    constexpr PageCount &operator+=(PageCount o)
    {
        n_ += o.n_;
        return *this;
    }

  private:
    std::uint64_t n_ = 0;
};

/** A page count's size in bytes. */
constexpr std::uint64_t
bytesOf(PageCount pages)
{
    return pages.raw() * pageBytes;
}

/** Pages needed to hold @p bytes (rounding up). */
constexpr PageCount
pagesForBytes(std::uint64_t bytes)
{
    return PageCount{(bytes + pageBytes - 1) / pageBytes};
}

namespace detail
{

/**
 * Shared scaffolding for the ordinal strong types: storage, explicit
 * raw-integer construction, the .raw() escape hatch, and ordering.
 * Derived types add the arithmetic that is meaningful for their domain.
 */
template <class Derived>
class Ordinal
{
  public:
    constexpr Ordinal() = default;
    constexpr explicit Ordinal(std::uint64_t raw) : v_(raw) {}

    /** Escape hatch to the raw integer; never converts implicitly. */
    constexpr std::uint64_t raw() const { return v_; }

    friend constexpr bool operator==(Derived a, Derived b)
    {
        return a.raw() == b.raw();
    }
    friend constexpr auto operator<=>(Derived a, Derived b)
    {
        return a.raw() <=> b.raw();
    }

    /** Streams as the raw value, so messages match the old aliases. */
    friend std::ostream &operator<<(std::ostream &os, Derived d)
    {
        return os << d.raw();
    }

  protected:
    std::uint64_t v_ = 0;
};

/**
 * A position on a page-number axis: ordered, movable by a page count,
 * and alignable to power-of-two spans. Positions of the same axis
 * subtract to a PageCount; positions never add to each other.
 */
template <class Derived>
class PageNum : public Ordinal<Derived>
{
  protected:
    using Ordinal<Derived>::v_;

  public:
    using Ordinal<Derived>::Ordinal;

    constexpr Derived operator+(std::uint64_t pages) const
    {
        return Derived{v_ + pages};
    }
    constexpr Derived operator-(std::uint64_t pages) const
    {
        return Derived{v_ - pages};
    }
    constexpr PageCount operator-(Derived o) const
    {
        return PageCount{v_ - o.raw()};
    }
    constexpr Derived &operator+=(std::uint64_t pages)
    {
        v_ += pages;
        return static_cast<Derived &>(*this);
    }
    constexpr Derived &operator-=(std::uint64_t pages)
    {
        v_ -= pages;
        return static_cast<Derived &>(*this);
    }
    constexpr Derived &operator++()
    {
        ++v_;
        return static_cast<Derived &>(*this);
    }
    constexpr Derived &operator--()
    {
        --v_;
        return static_cast<Derived &>(*this);
    }

    /** Round down to a multiple of @p span pages (power of two). */
    constexpr Derived alignDown(std::uint64_t span) const
    {
        return Derived{v_ & ~(span - 1)};
    }

    /** Round up to a multiple of @p span pages (power of two). */
    constexpr Derived alignUp(std::uint64_t span) const
    {
        return Derived{(v_ + span - 1) & ~(span - 1)};
    }

    /** True iff this page number is a multiple of @p span (pow2). */
    constexpr bool isAligned(std::uint64_t span) const
    {
        return (v_ & (span - 1)) == 0;
    }

    /** Offset in pages from the enclosing @p span boundary (pow2). */
    constexpr std::uint64_t offsetIn(std::uint64_t span) const
    {
        return v_ & (span - 1);
    }
};

} // namespace detail

/** Virtual page number (a position in virtual page space). */
class Vpn : public detail::PageNum<Vpn>
{
  public:
    using detail::PageNum<Vpn>::PageNum;
};

/** Physical page number (a position in physical frame space). */
class Ppn : public detail::PageNum<Ppn>
{
  public:
    using detail::PageNum<Ppn>::PageNum;
};

namespace detail
{

/** A byte-granularity address: ordered, movable by a byte count. */
template <class Derived>
class ByteAddr : public Ordinal<Derived>
{
  protected:
    using Ordinal<Derived>::v_;

  public:
    using Ordinal<Derived>::Ordinal;

    constexpr Derived operator+(std::uint64_t bytes) const
    {
        return Derived{v_ + bytes};
    }
    constexpr Derived operator-(std::uint64_t bytes) const
    {
        return Derived{v_ - bytes};
    }
    /** Distance in bytes between two addresses of the same space. */
    constexpr std::uint64_t operator-(Derived o) const
    {
        return v_ - o.raw();
    }
    constexpr Derived &operator+=(std::uint64_t bytes)
    {
        v_ += bytes;
        return static_cast<Derived &>(*this);
    }
};

} // namespace detail

/** Byte-granularity virtual address. */
class VirtAddr : public detail::ByteAddr<VirtAddr>
{
  public:
    using detail::ByteAddr<VirtAddr>::ByteAddr;
};

/** Byte-granularity physical address. */
class PhysAddr : public detail::ByteAddr<PhysAddr>
{
  public:
    using detail::ByteAddr<PhysAddr>::ByteAddr;
};

/** Sentinel for "no physical page". */
constexpr Ppn invalidPpn{~0ULL};
/** Sentinel for "no virtual page". */
constexpr Vpn invalidVpn{~0ULL};

// ---- Named domain crossings (the only sanctioned conversions) -------

/** Extract the virtual page number from a virtual address. */
constexpr Vpn
vpnOf(VirtAddr va)
{
    return Vpn{va.raw() >> pageShift};
}

/** Extract the physical page number from a physical address. */
constexpr Ppn
ppnOf(PhysAddr pa)
{
    return Ppn{pa.raw() >> pageShift};
}

/** Byte offset within a base page. */
constexpr std::uint64_t
pageOffset(VirtAddr va)
{
    return va.raw() & (pageBytes - 1);
}

/** First byte address of a virtual page. */
constexpr VirtAddr
vaOf(Vpn vpn)
{
    return VirtAddr{vpn.raw() << pageShift};
}

/** First byte address of a physical page. */
constexpr PhysAddr
paOf(Ppn ppn)
{
    return PhysAddr{ppn.raw() << pageShift};
}

/**
 * Reinterpret a guest-physical frame as the virtual axis of the *host*
 * dimension (nested translation): the host page table and host memory
 * map key their "VPN" side by guest-physical frame numbers. This is the
 * one sanctioned Ppn -> Vpn crossing.
 */
constexpr Vpn
hostVpnOf(Ppn guest_frame)
{
    return Vpn{guest_frame.raw()};
}

// ---- Granularity helpers for the translation pipelines --------------

/** Offset of @p vpn within its 2MB huge page, in 4KB pages. */
constexpr std::uint64_t
hugeOffset(Vpn vpn)
{
    return vpn.offsetIn(hugePages);
}

/** Offset of @p vpn within its 1GB giant page, in 4KB pages. */
constexpr std::uint64_t
giantOffset(Vpn vpn)
{
    return vpn.offsetIn(giantPages);
}

/**
 * Tag stored in a set-associative TLB. The key has already been shifted
 * to the entry's natural granularity (see set_assoc_tlb.hh), which is
 * why it is its own type: a TlbKey is *not* a page number and supports
 * no address arithmetic — only construction via the named makers below
 * (or explicitly from a raw scheme-specific encoding) and comparison.
 */
class TlbKey : public detail::Ordinal<TlbKey>
{
  public:
    using detail::Ordinal<TlbKey>::Ordinal;
};

/**
 * Address-space identifier tagging translations with their owning
 * process. ASID 0 is the untagged/single-process default: a TLB whose
 * current ASID is 0 produces exactly the pre-ASID compare words, so
 * single-tenant runs stay byte-identical. Non-zero ASIDs are mixed
 * into the TlbKey tag bits (see set_assoc_tlb.hh) so translations of
 * different address spaces coexist in one physical TLB. Only
 * comparable — an ASID is a name, not a number to do arithmetic on.
 */
class Asid : public detail::Ordinal<Asid>
{
  public:
    using detail::Ordinal<Asid>::Ordinal;
};

/** Key of a 4KB-page entry: the VPN itself. */
constexpr TlbKey
pageKey(Vpn vpn)
{
    return TlbKey{vpn.raw()};
}

/** Key of a 2MB-page entry: the VPN's huge-page index. */
constexpr TlbKey
hugeKey(Vpn vpn)
{
    return TlbKey{vpn.raw() >> hugeShift};
}

/** Key of a 1GB-page entry: the VPN's giant-page index. */
constexpr TlbKey
giantKey(Vpn vpn)
{
    return TlbKey{vpn.raw() >> giantShift};
}

/**
 * Key of a coalesced entry covering an aligned 2^log2-page group
 * (anchor entries keyed by AVPN >> log2(distance), paper Fig. 6;
 * cluster entries keyed by VPN / span).
 */
constexpr TlbKey
groupKey(Vpn vpn, unsigned span_log2)
{
    return TlbKey{vpn.raw() >> span_log2};
}

/**
 * An anchor distance: a power of two in [2, 2^16] pages (paper
 * Section 3.1), or the default-constructed "none". The page count and
 * its log2 travel together, so code can no longer pass a log2 where
 * pages are expected (or vice versa) — the slip the old pair of plain
 * integers invited.
 */
class AnchorDist
{
  public:
    /** "No distance" (a process not using the anchor scheme). */
    constexpr AnchorDist() = default;

    /** Wrap a distance given in pages; must be a power of two >= 2. */
    static constexpr AnchorDist fromPages(std::uint64_t pages)
    {
        // Callers validate range against their config; the type only
        // guarantees the pages/log2 pair is coherent.
        unsigned log2 = 0;
        while ((1ULL << log2) < pages)
            ++log2;
        return AnchorDist{pages, log2};
    }

    /** Wrap a distance given as log2(pages). */
    static constexpr AnchorDist fromLog2(unsigned log2)
    {
        return AnchorDist{1ULL << log2, log2};
    }

    constexpr bool none() const { return pages_ == 0; }

    /** Distance in 4KB pages (0 when none()). */
    constexpr std::uint64_t pages() const { return pages_; }

    /** log2 of the distance; meaningless when none(). */
    constexpr unsigned log2() const { return log2_; }

    /** True iff the wrapped value is a power of two >= 2. */
    constexpr bool valid() const
    {
        return pages_ >= 2 && (pages_ & (pages_ - 1)) == 0 &&
               pages_ == (1ULL << log2_);
    }

    /** Anchor VPN of @p vpn: the enclosing distance-aligned boundary. */
    constexpr Vpn anchorOf(Vpn vpn) const
    {
        return vpn.alignDown(pages_);
    }

    /** Pages between @p vpn and its anchor. */
    constexpr std::uint64_t offsetOf(Vpn vpn) const
    {
        return vpn.offsetIn(pages_);
    }

    /** TLB key of the anchor entry at @p avpn (paper Fig. 6). */
    constexpr TlbKey keyOf(Vpn avpn) const
    {
        return groupKey(avpn, log2_);
    }

    friend constexpr bool operator==(AnchorDist a, AnchorDist b)
    {
        return a.pages_ == b.pages_;
    }
    friend constexpr auto operator<=>(AnchorDist a, AnchorDist b)
    {
        return a.pages_ <=> b.pages_;
    }

    /** Streams as the page count, matching the old plain integer. */
    friend std::ostream &operator<<(std::ostream &os, AnchorDist d)
    {
        return os << d.pages_;
    }

  private:
    constexpr AnchorDist(std::uint64_t pages, unsigned log2)
        : pages_(pages), log2_(log2)
    {
    }

    std::uint64_t pages_ = 0;
    unsigned log2_ = 0;
};

/** Page sizes supported by the translation hardware. */
enum class PageSize : std::uint8_t
{
    Base4K,  //!< 4KB base page
    Huge2M,  //!< 2MB huge page
    Giant1G, //!< 1GB giant page
};

/** Number of base pages covered by a translation of the given size. */
constexpr PageCount
pagesCovered(PageSize size)
{
    switch (size) {
      case PageSize::Base4K: return PageCount{1};
      case PageSize::Huge2M: return PageCount{hugePages};
      case PageSize::Giant1G: return PageCount{giantPages};
    }
    return PageCount{1};
}

// ---- Layout pins ----------------------------------------------------
// The wrappers must stay bit-identical to the plain integers they
// replaced: single 8-byte payload, trivially copyable, standard layout.
// Binary trace formats and the batch-kernel hot path both rely on it.

namespace detail
{

template <class T>
constexpr bool isZeroCostWrapper =
    sizeof(T) == sizeof(std::uint64_t) &&
    alignof(T) == alignof(std::uint64_t) &&
    std::is_trivially_copyable_v<T> && std::is_standard_layout_v<T>;

} // namespace detail

static_assert(detail::isZeroCostWrapper<Vpn>);
static_assert(detail::isZeroCostWrapper<Ppn>);
static_assert(detail::isZeroCostWrapper<VirtAddr>);
static_assert(detail::isZeroCostWrapper<PhysAddr>);
static_assert(detail::isZeroCostWrapper<PageCount>);
static_assert(detail::isZeroCostWrapper<TlbKey>);
static_assert(detail::isZeroCostWrapper<Asid>);
static_assert(std::is_trivially_copyable_v<AnchorDist> &&
              sizeof(AnchorDist) == 16);

} // namespace atlb

// Hashing, for the profilers' page-indexed maps and sets.
template <>
struct std::hash<atlb::Vpn>
{
    std::size_t operator()(atlb::Vpn v) const noexcept
    {
        return std::hash<std::uint64_t>{}(v.raw());
    }
};

template <>
struct std::hash<atlb::Ppn>
{
    std::size_t operator()(atlb::Ppn p) const noexcept
    {
        return std::hash<std::uint64_t>{}(p.raw());
    }
};

template <>
struct std::hash<atlb::VirtAddr>
{
    std::size_t operator()(atlb::VirtAddr a) const noexcept
    {
        return std::hash<std::uint64_t>{}(a.raw());
    }
};

#endif // ANCHORTLB_COMMON_TYPES_HH
