/**
 * @file
 * Fundamental address and page types shared by every module.
 *
 * The simulator models an x86-64-like virtual memory system with 4KB base
 * pages and 2MB huge pages. Addresses are byte addresses; page numbers are
 * addresses shifted by the page-offset width. We use distinct (but plain)
 * integer aliases rather than strong types to keep the hot translation path
 * free of wrapper overhead; functions that convert between the domains live
 * in this header so the conversions are named and auditable.
 */

#ifndef ANCHORTLB_COMMON_TYPES_HH
#define ANCHORTLB_COMMON_TYPES_HH

#include <cstdint>

namespace atlb
{

/** Byte-granularity virtual address. */
using VirtAddr = std::uint64_t;
/** Byte-granularity physical address. */
using PhysAddr = std::uint64_t;
/** Virtual page number (VirtAddr >> pageShift). */
using Vpn = std::uint64_t;
/** Physical page number (PhysAddr >> pageShift). */
using Ppn = std::uint64_t;
/** Simulation cycle count. */
using Cycles = std::uint64_t;

/** log2 of the base page size (4KB pages). */
constexpr unsigned pageShift = 12;
/** Base page size in bytes. */
constexpr std::uint64_t pageBytes = 1ULL << pageShift;
/** Number of base pages per 2MB huge page. */
constexpr std::uint64_t hugePages = 512;
/** log2 of the number of base pages per huge page. */
constexpr unsigned hugeShift = 9;
/** Huge (2MB) page size in bytes. */
constexpr std::uint64_t hugeBytes = pageBytes * hugePages;

/** Number of base pages per 1GB giant page. */
constexpr std::uint64_t giantPages = 512 * 512;
/** log2 of the number of base pages per giant page. */
constexpr unsigned giantShift = 18;
/** Giant (1GB) page size in bytes. */
constexpr std::uint64_t giantBytes = pageBytes * giantPages;

/** Sentinel for "no physical page". */
constexpr Ppn invalidPpn = ~0ULL;
/** Sentinel for "no virtual page". */
constexpr Vpn invalidVpn = ~0ULL;

/** Extract the virtual page number from a virtual address. */
constexpr Vpn
vpnOf(VirtAddr va)
{
    return va >> pageShift;
}

/** Extract the physical page number from a physical address. */
constexpr Ppn
ppnOf(PhysAddr pa)
{
    return pa >> pageShift;
}

/** Byte offset within a base page. */
constexpr std::uint64_t
pageOffset(VirtAddr va)
{
    return va & (pageBytes - 1);
}

/** First byte address of a virtual page. */
constexpr VirtAddr
vaOf(Vpn vpn)
{
    return vpn << pageShift;
}

/** First byte address of a physical page. */
constexpr PhysAddr
paOf(Ppn ppn)
{
    return ppn << pageShift;
}

/** Page sizes supported by the translation hardware. */
enum class PageSize : std::uint8_t
{
    Base4K,  //!< 4KB base page
    Huge2M,  //!< 2MB huge page
    Giant1G, //!< 1GB giant page
};

/** Number of base pages covered by a translation of the given size. */
constexpr std::uint64_t
pagesCovered(PageSize size)
{
    switch (size) {
      case PageSize::Base4K: return 1;
      case PageSize::Huge2M: return hugePages;
      case PageSize::Giant1G: return giantPages;
    }
    return 1;
}

} // namespace atlb

#endif // ANCHORTLB_COMMON_TYPES_HH
