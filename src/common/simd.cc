#include "simd.hh"

#include <atomic>
#include <string>

#include "bitpack.hh"
#include "env.hh"
#include "logging.hh"
#include "simd_kernels.hh"

namespace atlb
{

namespace
{

/**
 * Resolved level, or -1 while unresolved. Atomic so a first call from
 * a worker thread races benignly with another: both resolve the same
 * env/CPUID answer and store the same value.
 */
std::atomic<int> g_level{-1};

bool
levelRunnable(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return true;
    case SimdLevel::Avx2:
#if defined(__x86_64__)
        return simd_avx2::available();
#else
        return false;
#endif
    case SimdLevel::Neon:
#if defined(__aarch64__)
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdLevel
resolveLevel()
{
    const std::string v = envString("ANCHORTLB_SIMD", "auto");
    if (v == "auto")
        return detectedSimdLevel();
    SimdLevel want = SimdLevel::Scalar;
    if (v == "scalar")
        want = SimdLevel::Scalar;
    else if (v == "avx2")
        want = SimdLevel::Avx2;
    else if (v == "neon")
        want = SimdLevel::Neon;
    else
        ATLB_FATAL("ANCHORTLB_SIMD='{}' is not scalar|avx2|neon|auto", v);
    if (!levelRunnable(want))
        ATLB_FATAL("ANCHORTLB_SIMD={} requested but this build/CPU "
                   "cannot run it (detected: {})",
                   v, simdLevelName(detectedSimdLevel()));
    return want;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Neon:
        return "neon";
    }
    return "unknown";
}

SimdLevel
detectedSimdLevel()
{
#if defined(__x86_64__)
    return simd_avx2::available() ? SimdLevel::Avx2 : SimdLevel::Scalar;
#elif defined(__aarch64__)
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

SimdLevel
simdLevel()
{
    const int cached = g_level.load(std::memory_order_relaxed);
    if (cached >= 0)
        return static_cast<SimdLevel>(cached);
    const SimdLevel resolved = resolveLevel();
    g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

void
forceSimdLevel(SimdLevel level)
{
    if (!levelRunnable(level))
        ATLB_FATAL("forceSimdLevel({}) on a build/CPU that cannot run "
                   "it (detected: {})",
                   simdLevelName(level),
                   simdLevelName(detectedSimdLevel()));
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

SimdFindU64Fn
simdFindU64Fn(SimdLevel level)
{
#if defined(__x86_64__)
    if (level == SimdLevel::Avx2)
        return &simd_avx2::findU64;
#endif
#if defined(__aarch64__)
    if (level == SimdLevel::Neon)
        return &simd_neon::findU64;
#endif
    (void)level;
    return nullptr;
}

SimdUnpackFn
simdBlockUnpackFn(SimdLevel level)
{
#if defined(__x86_64__)
    if (level == SimdLevel::Avx2)
        return &simd_avx2::unpackBits;
#endif
    // NEON: no 64-bit gather — block-at-a-time decode still pays, so
    // the "vector" form is the shared scalar unpack over the block.
    if (level == SimdLevel::Neon)
        return &scalarUnpackBits;
    (void)level;
    return nullptr;
}

SimdVpnEqFn
simdVpnEqFn(SimdLevel level)
{
#if defined(__x86_64__)
    if (level == SimdLevel::Avx2)
        return &simd_avx2::vpnEq;
#endif
#if defined(__aarch64__)
    if (level == SimdLevel::Neon)
        return &simd_neon::vpnEq;
#endif
    (void)level;
    return nullptr;
}

void
scalarUnpackBits(const std::uint8_t *base, std::size_t bytes_avail,
                 unsigned width, std::uint64_t *out, std::size_t count)
{
    // getBits reads byte-at-a-time, never past ceil(count * width / 8)
    // <= bytes_avail; the parameter exists for kernels that load wider.
    (void)bytes_avail;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = getBits(base, i * static_cast<std::uint64_t>(width),
                         width);
}

} // namespace atlb
