/**
 * @file
 * AVX2 kernels behind the runtime dispatch in common/simd.cc.
 *
 * This is the only TU compiled with -mavx2 (src/common/CMakeLists.txt
 * pins the flag per-source), so AVX2 code generation never leaks into
 * the core: a binary built here still runs on pre-AVX2 x86-64, because
 * these functions are only ever *called* after the one-time CPUID
 * check in available(). Each kernel is bit-for-bit equivalent to its
 * scalar reference — the differential tests (tests/common/test_simd.cc)
 * pin that across widths, counts and alignments.
 */

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "bitpack.hh"
#include "simd_kernels.hh"

namespace atlb::simd_avx2
{

bool
available()
{
    static const bool ok = __builtin_cpu_supports("avx2") != 0;
    return ok;
}

int
findU64(const std::uint64_t *words, unsigned count, std::uint64_t want)
{
    return findU64Inline(words, count, want);
}

namespace
{

/**
 * Width-specialised unpack: 4 fields per iteration via a byte-offset
 * gather, a variable right shift and a mask. A field at bit offset b
 * sits inside the 8 bytes loaded at byte b >> 3 whenever
 * (b & 7) + W <= 64, i.e. for every offset when W <= 57; wider fields
 * keep the byte-at-a-time reference form. The gather only runs while
 * the 8-byte load stays inside bytes_avail — the buffer tail (and any
 * too-short buffer) falls back to getBits, which never over-reads.
 */
template <unsigned W>
void
unpackW(const std::uint8_t *base, std::size_t bytes_avail,
        std::uint64_t *out, std::size_t count)
{
    if constexpr (W == 0) {
        (void)base;
        (void)bytes_avail;
        std::memset(out, 0, count * sizeof(std::uint64_t));
    } else if constexpr (W > 57) {
        (void)bytes_avail;
        for (std::size_t i = 0; i < count; ++i)
            out[i] = getBits(base, i * std::uint64_t{W}, W);
    } else {
        std::size_t safe = 0;
        if (bytes_avail >= 8) {
            // Largest i whose 8-byte load at byte (i*W)>>3 stays
            // in-bounds: (i*W)>>3 + 8 <= bytes_avail.
            const std::uint64_t max_bit = (bytes_avail - 8) * 8 + 7;
            safe = static_cast<std::size_t>(std::min<std::uint64_t>(
                count, max_bit / W + 1));
        }
        constexpr std::uint64_t mask = (std::uint64_t{1} << W) - 1;
        const __m256i vmask =
            _mm256_set1_epi64x(static_cast<long long>(mask));
        const __m256i seven = _mm256_set1_epi64x(7);
        const __m256i step = _mm256_set1_epi64x(4LL * W);
        __m256i bitpos = _mm256_set_epi64x(3LL * W, 2LL * W, W, 0);
        std::size_t i = 0;
        for (; i + 4 <= safe; i += 4) {
            const __m256i idx = _mm256_srli_epi64(bitpos, 3);
            const __m256i sh = _mm256_and_si256(bitpos, seven);
            __m256i v = _mm256_i64gather_epi64(
                reinterpret_cast<const long long *>(base), idx, 1);
            v = _mm256_srlv_epi64(v, sh);
            v = _mm256_and_si256(v, vmask);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), v);
            bitpos = _mm256_add_epi64(bitpos, step);
        }
        for (; i < count; ++i)
            out[i] = getBits(base, i * std::uint64_t{W}, W);
    }
}

using WidthFn = void (*)(const std::uint8_t *, std::size_t,
                         std::uint64_t *, std::size_t);

template <std::size_t... Ws>
constexpr std::array<WidthFn, sizeof...(Ws)>
makeWidthTable(std::index_sequence<Ws...> /*unused*/)
{
    return {&unpackW<static_cast<unsigned>(Ws)>...};
}

constexpr std::array<WidthFn, 65> kWidthTable =
    makeWidthTable(std::make_index_sequence<65>{});

} // namespace

void
unpackBits(const std::uint8_t *base, std::size_t bytes_avail,
           unsigned width, std::uint64_t *out, std::size_t count)
{
    kWidthTable[width](base, bytes_avail, out, count);
}

void
vpnEq(const std::uint8_t *accesses, std::size_t count, unsigned shift,
      std::uint64_t prev, std::uint64_t *vpns, std::uint64_t *eqbits)
{
    vpnEqInline(accesses, count, shift, prev, vpns, eqbits);
}

} // namespace atlb::simd_avx2

#endif // defined(__x86_64__)
