/**
 * @file
 * Small bit-manipulation helpers used across the TLB and allocator code.
 */

#ifndef ANCHORTLB_COMMON_BITOPS_HH
#define ANCHORTLB_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace atlb
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2(v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v == 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True iff @p v is a multiple of @p align (power of two). */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Smallest power of two >= @p v (v must be >= 1). */
constexpr std::uint64_t
nextPow2(std::uint64_t v)
{
    return 1ULL << ceilLog2(v);
}

/** Largest power of two <= @p v (v must be >= 1). */
constexpr std::uint64_t
prevPow2(std::uint64_t v)
{
    return 1ULL << floorLog2(v);
}

} // namespace atlb

#endif // ANCHORTLB_COMMON_BITOPS_HH
