/**
 * @file
 * Runtime SIMD dispatch for the translate hot path.
 *
 * Three kernels in the simulator are data-parallel and hot enough to
 * vectorize: the SetAssocTlb set probe (compare every way's tag word at
 * once), the ATLBTRC2 packed-block bit-unpack (whole-block delta
 * decode), and the batch kernel's VPN/same-page pre-pass (feeding the
 * L0 filter and the set prefetcher). All three stay *semantically
 * identical* to the scalar reference — same counters, same victim
 * choices, same decoded bytes — so the vector path is pure speed, never
 * behaviour (DESIGN.md §7.3 carries the argument).
 *
 * Dispatch is resolved once per process:
 *
 *   1. compile-time ISA: the AVX2 kernels exist only in the x86-64
 *      build (simd_avx2.cc, the single TU compiled with -mavx2; ISA
 *      flags never leak into the core), the NEON ones only on aarch64;
 *   2. one CPUID check: `auto` uses AVX2 only when the CPU reports it;
 *   3. an env override: ANCHORTLB_SIMD=scalar|avx2|neon|auto (default
 *      auto). Forcing a level the build/CPU cannot run is fatal.
 *
 * Objects capture the resolved level (as kernel pointers) at
 * construction, so benches and tests compare levels in one process via
 * forceSimdLevel() and fresh objects.
 */

#ifndef ANCHORTLB_COMMON_SIMD_HH
#define ANCHORTLB_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

namespace atlb
{

/** Vector ISA a kernel set targets. */
enum class SimdLevel : std::uint8_t
{
    Scalar, //!< reference path, available everywhere
    Avx2,   //!< x86-64 with AVX2 (checked via CPUID once)
    Neon,   //!< aarch64 baseline
};

/** Display name ("scalar", "avx2", "neon") for reports. */
const char *simdLevelName(SimdLevel level);

/** Best level this build + CPU supports (the `auto` resolution). */
SimdLevel detectedSimdLevel();

/**
 * The process-wide level: ANCHORTLB_SIMD if set (fatal when the build
 * or CPU cannot honour it), else detectedSimdLevel(). Resolved once;
 * objects snapshot it at construction.
 */
SimdLevel simdLevel();

/**
 * In-process override for benches and tests that compare levels within
 * one run (the env knob cannot change mid-process). Fatal if @p level
 * is not runnable here. Only objects constructed *after* the call see
 * the new level.
 */
void forceSimdLevel(SimdLevel level);

/**
 * Alignment of vector-probed word arrays. One 4-way set of 8-byte
 * compare words is exactly one 256-bit vector, so 32-byte alignment
 * puts every 4-way set on a single aligned load.
 */
constexpr std::size_t simdAlignBytes = 32;
static_assert(simdAlignBytes == 4 * sizeof(std::uint64_t) &&
              simdAlignBytes % alignof(std::uint64_t) == 0);

/**
 * Find the first index i < count with words[i] == want, else -1.
 * Callers that guarantee at most one match (SetAssocTlb's duplicate-tag
 * invariant) get an order-independent answer, which is what makes the
 * vector form interchangeable with the scalar scan.
 */
using SimdFindU64Fn = int (*)(const std::uint64_t *words, unsigned count,
                              std::uint64_t want);

/**
 * Unpack @p count little-endian bit fields of @p width bits (0..64)
 * starting at bit 0 of @p base into @p out, exactly as repeated
 * getBits calls would. @p bytes_avail is the number of readable bytes
 * at @p base; kernels may load up to 8 bytes at once and must fall
 * back to byte-at-a-time reads near the end of the buffer.
 */
using SimdUnpackFn = void (*)(const std::uint8_t *base,
                              std::size_t bytes_avail, unsigned width,
                              std::uint64_t *out, std::size_t count);

/**
 * Batch-kernel pre-pass: for @p count 16-byte access records at
 * @p accesses (a little-endian u64 address in bytes [0, 8) of each),
 * write vpns[i] = address >> shift and set bit i of @p eqbits when
 * vpns[i] == vpns[i - 1] (vpns[-1] is @p prev). @p eqbits holds
 * ceil(count / 64) words; bits at and above @p count are zero.
 */
using SimdVpnEqFn = void (*)(const std::uint8_t *accesses,
                             std::size_t count, unsigned shift,
                             std::uint64_t prev, std::uint64_t *vpns,
                             std::uint64_t *eqbits);

/** Set-probe kernel for @p level; nullptr at Scalar (inline loop). */
SimdFindU64Fn simdFindU64Fn(SimdLevel level);

/**
 * Whole-block unpack kernel for @p level; nullptr at Scalar (the
 * decoder then unpacks per element, the reference path). NEON has no
 * 64-bit gather, so its "vector" decode is the whole-block scalar
 * unpack — the block-at-a-time amortisation without the AVX2 kernel.
 */
SimdUnpackFn simdBlockUnpackFn(SimdLevel level);

/** VPN/same-page pre-pass kernel for @p level; nullptr at Scalar. */
SimdVpnEqFn simdVpnEqFn(SimdLevel level);

/** Reference unpack: getBits per element (also the NEON block form). */
void scalarUnpackBits(const std::uint8_t *base, std::size_t bytes_avail,
                      unsigned width, std::uint64_t *out,
                      std::size_t count);

/**
 * Zero-initialised u64 array whose storage is simdAlignBytes-aligned,
 * so vector probes of 4-way groups land on aligned loads. std::vector
 * only guarantees alignof(max_align_t); this pins the stronger bound
 * the probe kernels were written against.
 */
class AlignedU64Buffer
{
  public:
    AlignedU64Buffer() = default;
    explicit AlignedU64Buffer(std::size_t n) { reset(n); }
    ~AlignedU64Buffer() { release(); }

    AlignedU64Buffer(const AlignedU64Buffer &other) { assign(other); }
    AlignedU64Buffer &operator=(const AlignedU64Buffer &other)
    {
        if (this != &other) {
            release();
            assign(other);
        }
        return *this;
    }
    AlignedU64Buffer(AlignedU64Buffer &&other) noexcept
        : words_(other.words_), size_(other.size_)
    {
        other.words_ = nullptr;
        other.size_ = 0;
    }
    AlignedU64Buffer &operator=(AlignedU64Buffer &&other) noexcept
    {
        if (this != &other) {
            release();
            words_ = other.words_;
            size_ = other.size_;
            other.words_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    /** Reallocate to @p n words, all zero. */
    void reset(std::size_t n)
    {
        release();
        if (n == 0)
            return;
        words_ = static_cast<std::uint64_t *>(::operator new(
            n * sizeof(std::uint64_t), std::align_val_t{simdAlignBytes}));
        size_ = n;
        std::memset(words_, 0, n * sizeof(std::uint64_t));
    }

    std::uint64_t *data() { return words_; }
    const std::uint64_t *data() const { return words_; }
    std::size_t size() const { return size_; }
    std::uint64_t &operator[](std::size_t i) { return words_[i]; }
    const std::uint64_t &operator[](std::size_t i) const
    {
        return words_[i];
    }

  private:
    void release()
    {
        if (words_ != nullptr)
            ::operator delete(words_, std::align_val_t{simdAlignBytes});
        words_ = nullptr;
        size_ = 0;
    }
    void assign(const AlignedU64Buffer &other)
    {
        reset(other.size_);
        if (size_ != 0)
            std::memcpy(words_, other.words_,
                        size_ * sizeof(std::uint64_t));
    }

    std::uint64_t *words_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_COMMON_SIMD_HH
