/**
 * @file
 * Minimal gem5-style status and error reporting.
 *
 * - panic():  invariant violation inside the simulator itself (a bug);
 *             aborts so a debugger/core dump sees the failure point.
 * - fatal():  unrecoverable user/configuration error; exits with code 1.
 * - warn():   something questionable but survivable.
 * - inform(): plain status output.
 *
 * Messages accept printf-free '{}' style interpolation via a tiny
 * formatter to avoid dragging in a dependency.
 */

#ifndef ANCHORTLB_COMMON_LOGGING_HH
#define ANCHORTLB_COMMON_LOGGING_HH

#include <sstream>
#include <string>
#include <string_view>

namespace atlb
{

namespace detail
{

inline void
formatInto(std::ostringstream &os, std::string_view fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, std::string_view fmt, const T &head,
           const Rest &...rest)
{
    const auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt;
        return;
    }
    os << fmt.substr(0, pos) << head;
    formatInto(os, fmt.substr(pos + 2), rest...);
}

/**
 * Test hook: when enabled, panic/fatal throw std::logic_error /
 * std::runtime_error instead of terminating the process.
 */
void setThrowOnError(bool enable);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Format '{}' placeholders with the remaining arguments. */
template <typename... Args>
std::string
format(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, fmt, args...);
    return os.str();
}

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, std::string_view fmt,
        const Args &...args)
{
    detail::panicImpl(file, line, format(fmt, args...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, std::string_view fmt,
        const Args &...args)
{
    detail::fatalImpl(file, line, format(fmt, args...));
}

/** Report a survivable anomaly to stderr. */
template <typename... Args>
void
warn(std::string_view fmt, const Args &...args)
{
    detail::warnImpl(format(fmt, args...));
}

/** Report plain status to stderr. */
template <typename... Args>
void
inform(std::string_view fmt, const Args &...args)
{
    detail::informImpl(format(fmt, args...));
}

} // namespace atlb

/** Abort on a simulator bug; never returns. */
#define ATLB_PANIC(...) ::atlb::panicAt(__FILE__, __LINE__, __VA_ARGS__)
/** Exit(1) on an unrecoverable user/config error; never returns. */
#define ATLB_FATAL(...) ::atlb::fatalAt(__FILE__, __LINE__, __VA_ARGS__)
/** Panic unless @p cond holds. */
#define ATLB_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ATLB_PANIC("assertion failed: " #cond " -- " __VA_ARGS__);      \
    } while (0)

#endif // ANCHORTLB_COMMON_LOGGING_HH
