/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * fragmentation injection, synthetic chunk sizing) flows through Rng so
 * that every experiment is exactly reproducible from its seed. The
 * implementation is xoshiro256**, seeded via SplitMix64, which is fast
 * enough to sit on the trace-generation hot path.
 */

#ifndef ANCHORTLB_COMMON_RNG_HH
#define ANCHORTLB_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace atlb
{

/**
 * Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Sample from a truncated Zipf-like distribution over [0, n):
     * rank r has weight 1 / (r + 1)^theta. Used for skewed page reuse.
     */
    std::uint64_t nextZipf(std::uint64_t n, double theta);

    /**
     * Approximately geometric sample with mean @p mean, clamped to
     * [1, cap]. Used for chunk/burst sizing.
     */
    std::uint64_t nextGeometric(double mean, std::uint64_t cap);

    /** Re-seed, resetting the stream. */
    void reseed(std::uint64_t seed);

  private:
    std::array<std::uint64_t, 4> state_;

    static std::uint64_t splitMix64(std::uint64_t &x);
};

} // namespace atlb

#endif // ANCHORTLB_COMMON_RNG_HH
