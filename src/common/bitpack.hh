/**
 * @file
 * Little-endian bit-field packing primitives.
 *
 * Shared by the ATLBTRC2 packed-block codec (ingest/trace_v2.cc), the
 * scalar reference unpack in common/simd.cc, and the width-exhaustive
 * round-trip tests. Bit `k` of the stream lives in bit `k % 8` of byte
 * `k / 8`; a field written at bit offset `p` with width `w` occupies
 * stream bits [p, p + w). Width 0 fields read back as 0 and write
 * nothing — the codec emits them for blocks whose deltas are all zero.
 *
 * These are the *reference* byte-at-a-time forms: every vectorized
 * unpack kernel (common/simd_avx2.cc) must reproduce getBits exactly,
 * which the tests pin width by width.
 */

#ifndef ANCHORTLB_COMMON_BITPACK_HH
#define ANCHORTLB_COMMON_BITPACK_HH

#include <algorithm>
#include <cstdint>

namespace atlb
{

/** Write the low @p width bits of @p v at bit offset @p bitpos. */
inline void
putBits(std::uint8_t *base, std::uint64_t bitpos, std::uint64_t v,
        unsigned width)
{
    unsigned done = 0;
    while (done < width) {
        const std::uint64_t p = bitpos + done;
        const unsigned bit = static_cast<unsigned>(p & 7);
        const unsigned chunk = std::min(8 - bit, width - done);
        const std::uint64_t mask = (1ULL << chunk) - 1;
        base[p >> 3] |=
            static_cast<std::uint8_t>(((v >> done) & mask) << bit);
        done += chunk;
    }
}

/** Read @p width bits starting at bit offset @p bitpos. */
inline std::uint64_t
getBits(const std::uint8_t *base, std::uint64_t bitpos, unsigned width)
{
    std::uint64_t v = 0;
    unsigned done = 0;
    while (done < width) {
        const std::uint64_t p = bitpos + done;
        const unsigned bit = static_cast<unsigned>(p & 7);
        const unsigned chunk = std::min(8 - bit, width - done);
        const std::uint64_t mask = (1ULL << chunk) - 1;
        v |= ((static_cast<std::uint64_t>(base[p >> 3]) >> bit) & mask)
             << done;
        done += chunk;
    }
    return v;
}

} // namespace atlb

#endif // ANCHORTLB_COMMON_BITPACK_HH
