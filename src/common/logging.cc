#include "logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace atlb::detail
{

namespace
{

// Tests flip this to capture fatal paths without killing the process.
bool throw_on_error = false;

} // namespace

void
setThrowOnError(bool enable)
{
    throw_on_error = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    if (throw_on_error)
        throw std::logic_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    if (throw_on_error)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace atlb::detail
