#include "rng.hh"

#include <cmath>

namespace atlb
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitMix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : state_)
        s = splitMix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection-free bounded sampling via 128-bit multiply;
    // bias is negligible (< 2^-64 per draw) for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double theta)
{
    // Inverse-CDF approximation for the continuous analogue of Zipf:
    // cheap and monotone, adequate for generating skewed reuse patterns.
    if (n <= 1)
        return 0;
    const double u = nextDouble();
    if (theta == 1.0) {
        const double r = std::pow(static_cast<double>(n), u) - 1.0;
        const std::uint64_t v = static_cast<std::uint64_t>(r);
        return v >= n ? n - 1 : v;
    }
    const double one_minus = 1.0 - theta;
    const double np = std::pow(static_cast<double>(n), one_minus);
    const double r = std::pow(u * (np - 1.0) + 1.0, 1.0 / one_minus) - 1.0;
    const std::uint64_t v = static_cast<std::uint64_t>(r);
    return v >= n ? n - 1 : v;
}

std::uint64_t
Rng::nextGeometric(double mean, std::uint64_t cap)
{
    if (mean <= 1.0)
        return 1;
    const double u = nextDouble();
    const double p = 1.0 / mean;
    // Inverse CDF of the geometric distribution on {1, 2, ...}.
    const double r = std::log1p(-u) / std::log1p(-p);
    std::uint64_t v = static_cast<std::uint64_t>(r) + 1;
    if (v > cap)
        v = cap;
    if (v < 1)
        v = 1;
    return v;
}

} // namespace atlb
