/**
 * @file
 * Little-endian byte codec for the persistent result store.
 *
 * A deliberately tiny pair of helpers: ByteWriter appends fixed-width
 * little-endian integers, bit-pattern doubles and length-prefixed
 * strings to a growable buffer; ByteReader decodes the same sequence
 * with sticky failure (any short or malformed read poisons the reader
 * instead of throwing, so callers check ok() once at the end). The
 * explicit per-byte encoding keeps serialized records identical across
 * platforms and compilers — a record written anywhere decodes anywhere.
 */

#ifndef ANCHORTLB_COMMON_SERIALIZE_HH
#define ANCHORTLB_COMMON_SERIALIZE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace atlb
{

/** Appends typed fields to a byte buffer. */
class ByteWriter
{
  public:
    void putU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void putU32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            putU8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void putU64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            putU8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** IEEE-754 bit pattern: round-trips exactly, no text rounding. */
    void putDouble(double v) { putU64(std::bit_cast<std::uint64_t>(v)); }

    /** Length-prefixed (u32) string. */
    void putString(const std::string &s)
    {
        putU32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s);
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Decodes a ByteWriter sequence; any malformed read poisons ok(). */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : data_(static_cast<const unsigned char *>(data)), size_(size)
    {
    }

    explicit ByteReader(const std::string &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t getU8()
    {
        if (pos_ >= size_) {
            ok_ = false;
            return 0;
        }
        return data_[pos_++];
    }

    std::uint32_t getU32()
    {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(getU8()) << (8 * i);
        return v;
    }

    std::uint64_t getU64()
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(getU8()) << (8 * i);
        return v;
    }

    double getDouble() { return std::bit_cast<double>(getU64()); }

    std::string getString()
    {
        const std::uint32_t len = getU32();
        if (!ok_ || size_ - pos_ < len) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_) + pos_, len);
        pos_ += len;
        return s;
    }

    /** True while every read so far was in bounds. */
    bool ok() const { return ok_; }

    /** True when the whole buffer was consumed (and nothing failed). */
    bool atEnd() const { return ok_ && pos_ == size_; }

  private:
    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace atlb

#endif // ANCHORTLB_COMMON_SERIALIZE_HH
