#include "thread_pool.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace atlb
{

unsigned
configuredThreadCount()
{
    if (envPresent("ANCHORTLB_THREADS")) {
        const std::uint64_t n = envU64("ANCHORTLB_THREADS", 0);
        if (n == 0)
            ATLB_FATAL("ANCHORTLB_THREADS must be >= 1");
        return static_cast<unsigned>(n);
    }
    return hardwareThreadCount();
}

unsigned
hardwareThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ATLB_ASSERT(!stop_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(job));
        ++unfinished_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --unfinished_;
            if (unfinished_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace atlb
