#include "hash.hh"

#include <bit>
#include <fstream>
#include <vector>

namespace atlb
{

std::uint64_t
fnv1a64(const void *data, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = fnv1aOffsetBasis;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= fnv1aPrime;
    }
    return h;
}

bool
fnv1a64File(const std::string &path, std::uint64_t &digest)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    Fnv1a h;
    std::vector<char> buf(1 << 16);
    while (in) {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        const std::streamsize got = in.gcount();
        if (got > 0)
            h.addBytes(buf.data(), static_cast<std::size_t>(got));
    }
    if (in.bad())
        return false;
    digest = h.digest();
    return true;
}

Fnv1a &
Fnv1a::addDouble(double v)
{
    return addU64(std::bit_cast<std::uint64_t>(v));
}

} // namespace atlb
