/**
 * @file
 * Per-ISA kernel declarations, and the shared inline bodies.
 *
 * Two kinds of consumer include this header:
 *
 *  - common/simd.cc (the dispatcher) and the kernel TUs
 *    (simd_avx2.cc, simd_neon.cc), which need the out-of-line symbol
 *    declarations the function-pointer accessors hand out;
 *  - the SIMD batch-kernel TUs (mmu/batch_kernel_avx2.cc,
 *    mmu/batch_kernel_neon.cc), which call the *Inline forms directly
 *    so the probe and the pre-pass disappear into the kernel loop —
 *    per-call indirection through the dispatch pointers was measured
 *    to cost more than the work it dispatched (DESIGN.md §7.3).
 *
 * The inline bodies are guarded by the ISA feature macros, so they
 * only exist in TUs actually compiled for that ISA (simd_avx2.cc and
 * batch_kernel_avx2.cc get -mavx2 per-source; aarch64 ships NEON in
 * the baseline). The out-of-line symbols are thin wrappers around the
 * same inline bodies — one implementation, tested once through the
 * dispatch pointers (tests/common/test_simd.cc), inlined where it is
 * hot.
 */

#ifndef ANCHORTLB_COMMON_SIMD_KERNELS_HH
#define ANCHORTLB_COMMON_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>

#include <bit>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace atlb
{

#if defined(__x86_64__)
namespace simd_avx2
{
/** One-time CPUID probe: true when the CPU executes AVX2. */
bool available();
int findU64(const std::uint64_t *words, unsigned count,
            std::uint64_t want);
void unpackBits(const std::uint8_t *base, std::size_t bytes_avail,
                unsigned width, std::uint64_t *out, std::size_t count);
void vpnEq(const std::uint8_t *accesses, std::size_t count,
           unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
           std::uint64_t *eqbits);

#if defined(__AVX2__)

/** Inline body of findU64 (see the SimdFindU64Fn contract). */
inline int
findU64Inline(const std::uint64_t *words, unsigned count,
              std::uint64_t want)
{
    const __m256i w = _mm256_set1_epi64x(static_cast<long long>(want));
    unsigned i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, w)));
        if (m != 0)
            return static_cast<int>(i) +
                   std::countr_zero(static_cast<unsigned>(m));
    }
    for (; i < count; ++i)
        if (words[i] == want)
            return static_cast<int>(i);
    return -1;
}

/**
 * Inline body of vpnEq (see the SimdVpnEqFn contract). One fused pass:
 * four 16-byte records become one vector of VPNs, compared against the
 * same vector shifted down one lane (lane 0 takes the carry — the
 * previous iteration's last VPN, seeded with @p prev), so the stream
 * is loaded once and the eq bitset costs one compare + movemask per
 * four records.
 */
inline void
vpnEqInline(const std::uint8_t *accesses, std::size_t count,
            unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
            std::uint64_t *eqbits)
{
    for (std::size_t w = 0; w * 64 < count; ++w)
        eqbits[w] = 0;
    const __m128i shcnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    __m256i carry = _mm256_set1_epi64x(static_cast<long long>(prev));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        // Two 32-byte loads cover four records; unpacklo gathers their
        // address words as {v0, v2, v1, v3} (the unpack interleaves
        // 128-bit lanes) and the permute restores stream order.
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(accesses + 16 * i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(accesses + 16 * i + 32));
        __m256i v = _mm256_unpacklo_epi64(a, b);
        v = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(3, 1, 2, 0));
        v = _mm256_srl_epi64(v, shcnt);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(vpns + i), v);
        // prv = {carry, v0, v1, v2}: v shifted down a lane, lane 0
        // blended from the carry (a 32-bit blend, so mask 0x03 covers
        // one 64-bit lane).
        const __m256i down =
            _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 1, 0, 0));
        const __m256i prv = _mm256_blend_epi32(down, carry, 0x03);
        const auto m =
            static_cast<std::uint64_t>(static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpeq_epi64(v, prv)))));
        const unsigned off = static_cast<unsigned>(i & 63);
        eqbits[i >> 6] |= m << off;
        if (off > 60)
            eqbits[(i >> 6) + 1] |= m >> (64 - off);
        carry = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(3, 3, 3, 3));
    }
    std::uint64_t last = i != 0 ? vpns[i - 1] : prev;
    for (; i < count; ++i) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, accesses + 16 * i, sizeof(raw));
        vpns[i] = raw >> shift;
        if (vpns[i] == last)
            eqbits[i >> 6] |= std::uint64_t{1} << (i & 63);
        last = vpns[i];
    }
}

#endif // defined(__AVX2__)
} // namespace simd_avx2
#endif // defined(__x86_64__)

#if defined(__aarch64__)
namespace simd_neon
{
int findU64(const std::uint64_t *words, unsigned count,
            std::uint64_t want);
void vpnEq(const std::uint8_t *accesses, std::size_t count,
           unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
           std::uint64_t *eqbits);

#if defined(__ARM_NEON)

/** Inline body of findU64 (see the SimdFindU64Fn contract). */
inline int
findU64Inline(const std::uint64_t *words, unsigned count,
              std::uint64_t want)
{
    const uint64x2_t w = vdupq_n_u64(want);
    unsigned i = 0;
    for (; i + 2 <= count; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(words + i), w);
        if (vgetq_lane_u64(eq, 0) != 0)
            return static_cast<int>(i);
        if (vgetq_lane_u64(eq, 1) != 0)
            return static_cast<int>(i + 1);
    }
    for (; i < count; ++i)
        if (words[i] == want)
            return static_cast<int>(i);
    return -1;
}

/** Inline body of vpnEq (see the SimdVpnEqFn contract). */
inline void
vpnEqInline(const std::uint8_t *accesses, std::size_t count,
            unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
            std::uint64_t *eqbits)
{
    // vld2 de-interleaves {address, flags} record pairs; a negative
    // vector shift is NEON's right shift.
    const int64x2_t sh = vdupq_n_s64(-static_cast<std::int64_t>(shift));
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        const uint64x2x2_t rec = vld2q_u64(
            reinterpret_cast<const std::uint64_t *>(accesses + 16 * i));
        vst1q_u64(vpns + i, vshlq_u64(rec.val[0], sh));
    }
    for (; i < count; ++i) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, accesses + 16 * i, sizeof(raw));
        vpns[i] = raw >> shift;
    }

    const std::size_t words = (count + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
        eqbits[w] = 0;
    if (count == 0)
        return;
    if (vpns[0] == prev)
        eqbits[0] |= 1;
    for (i = 1; i < count; ++i)
        if (vpns[i] == vpns[i - 1])
            eqbits[i >> 6] |= std::uint64_t{1} << (i & 63);
}

#endif // defined(__ARM_NEON)
} // namespace simd_neon
#endif // defined(__aarch64__)

} // namespace atlb

#endif // ANCHORTLB_COMMON_SIMD_KERNELS_HH
