/**
 * @file
 * Typed readers for the ANCHORTLB_* environment knobs.
 *
 * Every tunable the binaries accept from the environment flows through
 * these helpers so parsing and validation live in one place (SimOptions,
 * the thread pool and the sharded runner all read their knobs here).
 */

#ifndef ANCHORTLB_COMMON_ENV_HH
#define ANCHORTLB_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace atlb
{

/** True when @p name is set (to anything, including empty). */
bool envPresent(const std::string &name);

/** Unsigned integer value of @p name, or @p fallback when unset. */
std::uint64_t envU64(const std::string &name, std::uint64_t fallback);

/** Double value of @p name, or @p fallback when unset. */
double envDouble(const std::string &name, double fallback);

/** String value of @p name, or @p fallback when unset. */
std::string envString(const std::string &name,
                      const std::string &fallback);

} // namespace atlb

#endif // ANCHORTLB_COMMON_ENV_HH
