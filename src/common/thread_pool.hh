/**
 * @file
 * Fixed-size thread pool for the parallel experiment engine.
 *
 * Deliberately minimal: a bounded set of worker threads draining a FIFO
 * job queue, plus a wait() barrier. Determinism is the callers'
 * responsibility — every job submitted by the sweep engine derives all
 * of its randomness from per-cell seeds, so execution order never
 * affects results (see sim/parallel_runner.hh).
 */

#ifndef ANCHORTLB_COMMON_THREAD_POOL_HH
#define ANCHORTLB_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atlb
{

/**
 * Number of worker threads tools should use: the ANCHORTLB_THREADS
 * environment variable when set (must be >= 1), else the hardware
 * concurrency (minimum 1). 1 means "stay on the caller's thread".
 */
unsigned configuredThreadCount();

/** Hardware concurrency as reported by the OS (minimum 1). */
unsigned hardwareThreadCount();

/** Fixed-size FIFO thread pool. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one job. Jobs must not throw: a fatal error inside a job
     * terminates the process (matching ATLB_FATAL semantics elsewhere).
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_; //!< signalled on submit/stop
    std::condition_variable idle_cv_; //!< signalled when a job finishes
    std::size_t unfinished_ = 0;      //!< queued + currently running
    bool stop_ = false;
};

} // namespace atlb

#endif // ANCHORTLB_COMMON_THREAD_POOL_HH
