#include "env.hh"

#include <cstdlib>

namespace atlb
{

bool
envPresent(const std::string &name)
{
    return std::getenv(name.c_str()) != nullptr;
}

std::uint64_t
envU64(const std::string &name, std::uint64_t fallback)
{
    const char *v = std::getenv(name.c_str());
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

double
envDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    return v ? std::strtod(v, nullptr) : fallback;
}

std::string
envString(const std::string &name, const std::string &fallback)
{
    const char *v = std::getenv(name.c_str());
    return v ? std::string(v) : fallback;
}

} // namespace atlb
