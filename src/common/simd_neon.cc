/**
 * @file
 * NEON kernels behind the runtime dispatch in common/simd.cc.
 *
 * aarch64 ships NEON in the baseline ISA, so unlike the AVX2 TU this
 * one needs no special compile flags and no CPUID gate — only the
 * compile-time guard. NEON has no 64-bit gather, so there is no
 * bit-unpack kernel here; the dispatcher wires the Neon level's block
 * decode to the shared scalar unpack instead (the whole-block
 * amortisation is kept, the per-element extraction is not vectorised).
 */

#if defined(__aarch64__)

#include "simd_kernels.hh"

namespace atlb::simd_neon
{

int
findU64(const std::uint64_t *words, unsigned count, std::uint64_t want)
{
    return findU64Inline(words, count, want);
}

void
vpnEq(const std::uint8_t *accesses, std::size_t count, unsigned shift,
      std::uint64_t prev, std::uint64_t *vpns, std::uint64_t *eqbits)
{
    vpnEqInline(accesses, count, shift, prev, vpns, eqbits);
}

} // namespace atlb::simd_neon

#endif // defined(__aarch64__)
