/**
 * @file
 * FNV-1a hashing shared by the trace codec and the result store.
 *
 * Two consumers need the same primitive: the ATLBTRC2 codec checksums
 * its block payloads, and the sweep service content-addresses result
 * cells by a canonical hash of every input that shapes them. The
 * incremental Fnv1a builder exists for the latter: each field is folded
 * with an unambiguous encoding (fixed-width little-endian integers,
 * length-prefixed strings, bit-pattern doubles) so two different field
 * sequences can never produce the same byte stream, and the digest is
 * stable across platforms and runs.
 */

#ifndef ANCHORTLB_COMMON_HASH_HH
#define ANCHORTLB_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace atlb
{

/** FNV-1a 64-bit offset basis (the hash of zero bytes). */
constexpr std::uint64_t fnv1aOffsetBasis = 14695981039346656037ULL;
/** FNV-1a 64-bit prime. */
constexpr std::uint64_t fnv1aPrime = 1099511628211ULL;

/** FNV-1a 64-bit over @p size bytes. */
std::uint64_t fnv1a64(const void *data, std::size_t size);

/**
 * FNV-1a 64-bit over a file's content, streamed in chunks. Returns
 * false (and leaves @p digest untouched) when the file cannot be read.
 */
bool fnv1a64File(const std::string &path, std::uint64_t &digest);

/**
 * Incremental FNV-1a builder with typed, self-delimiting field
 * encodings. Field order matters (by design: the cell key canonical
 * form is a fixed field sequence).
 */
class Fnv1a
{
  public:
    Fnv1a &addBytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= p[i];
            hash_ *= fnv1aPrime;
        }
        return *this;
    }

    /** Fold a 64-bit value as 8 little-endian bytes. */
    Fnv1a &addU64(std::uint64_t v)
    {
        unsigned char bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(v >> (8 * i));
        return addBytes(bytes, sizeof(bytes));
    }

    /** Fold a boolean as one byte. */
    Fnv1a &addBool(bool v) { return addU64(v ? 1 : 0); }

    /**
     * Fold a double by its IEEE-754 bit pattern (exact, no text
     * rounding; -0.0 and 0.0 deliberately hash differently).
     */
    Fnv1a &addDouble(double v);

    /** Fold a string, length-prefixed so concatenations cannot alias. */
    Fnv1a &addString(const std::string &s)
    {
        addU64(s.size());
        return addBytes(s.data(), s.size());
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = fnv1aOffsetBasis;
};

} // namespace atlb

#endif // ANCHORTLB_COMMON_HASH_HH
