/**
 * @file
 * Leveled correctness-check macros.
 *
 * Two strengths, mirroring the usual CHECK/DCHECK split:
 *
 *  - ANCHOR_CHECK(cond, ...):  always compiled, in every build type.
 *    For cheap conditions guarding against state corruption whose cost
 *    is negligible next to the code they protect (constructor argument
 *    validation, rare slow paths). Panics (aborts) on failure.
 *
 *  - ANCHOR_DCHECK(cond, ...): compiled only when the build defines
 *    ANCHORTLB_CHECKED (CMake -DANCHORTLB_CHECKED=ON). For expensive
 *    invariants on hot paths — e.g. re-walking the page table to verify
 *    every TLB fast-path translation. When the option is OFF the whole
 *    macro, including the condition expression, compiles to nothing, so
 *    checked instrumentation adds zero overhead to release builds.
 *
 * _EQ variants print both operands on failure, which turns an oracle
 * mismatch into an actionable message instead of a bare condition.
 */

#ifndef ANCHORTLB_COMMON_CHECK_HH
#define ANCHORTLB_COMMON_CHECK_HH

#include "common/logging.hh"

namespace atlb
{

/** True when this build compiles ANCHOR_DCHECK conditions in. */
constexpr bool
checkedBuild()
{
#ifdef ANCHORTLB_CHECKED
    return true;
#else
    return false;
#endif
}

} // namespace atlb

/** Panic unless @p cond holds; compiled in every build. */
#define ANCHOR_CHECK(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ATLB_PANIC("check failed: " #cond " -- " __VA_ARGS__);          \
    } while (0)

/** Panic unless a == b, printing both values; always compiled. */
#define ANCHOR_CHECK_EQ(a, b, ...)                                          \
    do {                                                                    \
        const auto check_a_ = (a);                                          \
        const auto check_b_ = (b);                                          \
        if (!(check_a_ == check_b_)) {                                      \
            ATLB_PANIC("{}",                                                \
                       ::atlb::format("check failed: " #a " == " #b        \
                                      " ({} vs {}) -- ",                    \
                                      check_a_, check_b_) +                 \
                           ::atlb::format("" __VA_ARGS__));                 \
        }                                                                   \
    } while (0)

#ifdef ANCHORTLB_CHECKED

/** Checked builds only: panic unless @p cond holds. */
#define ANCHOR_DCHECK(cond, ...) ANCHOR_CHECK(cond, __VA_ARGS__)
/** Checked builds only: panic unless a == b, printing both values. */
#define ANCHOR_DCHECK_EQ(a, b, ...) ANCHOR_CHECK_EQ(a, b, __VA_ARGS__)

#else

/**
 * Release builds: the condition is *not evaluated* (not merely ignored),
 * so ANCHOR_DCHECK arguments must be side-effect free.
 */
#define ANCHOR_DCHECK(cond, ...)                                            \
    do {                                                                    \
    } while (0)
#define ANCHOR_DCHECK_EQ(a, b, ...)                                         \
    do {                                                                    \
    } while (0)

#endif // ANCHORTLB_CHECKED

#endif // ANCHORTLB_COMMON_CHECK_HH
