#include "rmm_mmu.hh"

#include "common/logging.hh"
#include "os/memory_map.hh"

namespace atlb
{

RmmMmu::RmmMmu(const MmuConfig &config, const PageTable &table,
               const MemoryMap &range_table, std::string name)
    : BaselineMmu(config, table, std::move(name)),
      range_table_(&range_table), range_tlb_(config.range_entries)
{
}

void
RmmMmu::switchProcess(const ProcessContext &ctx)
{
    ATLB_ASSERT(ctx.map, "RMM needs the new process's range table");
    range_table_ = ctx.map;
    BaselineMmu::switchProcess(ctx);
}

TranslationResult
RmmMmu::translateL2(Vpn vpn)
{
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
        return {e->ppn + hugeOffset(vpn), config_.l2_hit_cycles,
                HitLevel::L2Regular, PageSize::Huge2M};
    }
    if (const RangeEntry *r = range_tlb_.lookup(vpn)) {
        return {r->translate(vpn), config_.coalesced_hit_cycles,
                HitLevel::Coalesced, PageSize::Base4K};
    }

    TranslationResult res =
        walkPageTable(vpn, config_.coalesced_hit_cycles);
    fillL2(vpn, res);
    // Range-table walk, off the critical path: refill the covering range.
    if (const Chunk *c = range_table_->chunkContaining(vpn)) {
        if (c->pages >= config_.rmm_min_range_pages)
            range_tlb_.insert({c->vpn, c->vpnEnd(), c->ppn});
    }
    return res;
}

void
RmmMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                       BatchStats &batch)
{
    runBatchKernel(accesses, n, batch,
                   [this](Vpn vpn) { return RmmMmu::translateL2(vpn); });
}

void
RmmMmu::flushAll()
{
    BaselineMmu::flushAll();
    range_tlb_.flush();
}

void
RmmMmu::invalidatePage(Vpn vpn)
{
    BaselineMmu::invalidatePage(vpn);
    range_tlb_.invalidateContaining(vpn);
}

void
RmmMmu::invalidatePage(Vpn vpn, Asid target)
{
    BaselineMmu::invalidatePage(vpn, target);
    range_tlb_.invalidateContaining(vpn, target);
}

void
RmmMmu::invalidateAsid(Asid target)
{
    BaselineMmu::invalidateAsid(target);
    range_tlb_.invalidateAsid(target);
}

void
RmmMmu::applyAsid(Asid asid)
{
    BaselineMmu::applyAsid(asid);
    range_tlb_.setAsid(asid);
}

} // namespace atlb
