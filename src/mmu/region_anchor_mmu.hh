/**
 * @file
 * Multi-region anchor MMU — the paper's Section 4.2 extension.
 *
 * Hardware additions over the single-distance anchor MMU: a small
 * region table holding (start VPN, end VPN, anchor distance) triples,
 * searched in parallel with the L1/L2 lookups exactly like RMM's range
 * TLB searches ranges — which is why its capacity must stay small. On
 * an L2 regular miss, the matching region supplies the distance used to
 * form the anchor VPN and key; everything else follows the Table 2
 * flow.
 *
 * Anchor keys embed log2(distance) so that two regions with different
 * distances can never alias onto each other's entries. A VPN whose
 * anchor VPN falls before its region's start gets no anchor service
 * (the region table makes this check trivial in hardware): the anchor
 * slot there belongs to the neighbouring region and was encoded with a
 * different distance.
 */

#ifndef ANCHORTLB_MMU_REGION_ANCHOR_MMU_HH
#define ANCHORTLB_MMU_REGION_ANCHOR_MMU_HH

#include <vector>

#include "mmu/mmu.hh"
#include "os/region_partitioner.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

/** Statistics specific to the multi-region pipeline. */
struct RegionAnchorStats
{
    std::uint64_t anchor_hits = 0;
    std::uint64_t anchor_fills = 0;
    std::uint64_t regular_fills = 0;
    /** Accesses that matched no region (served at default distance). */
    std::uint64_t region_misses = 0;
};

/** Anchor pipeline with per-VA-region distances. */
class RegionAnchorMmu : public Mmu
{
  public:
    /** Maximum region-table entries (parallel search budget). */
    static constexpr unsigned maxRegions = 16;

    /**
     * @param partition regions + default distance; the page table must
     *                  have been built with buildRegionAnchorPageTable
     *                  over the same partition.
     */
    RegionAnchorMmu(const MmuConfig &config, const PageTable &table,
                    RegionPartition partition,
                    std::string name = "region-anchor");

    void flushAll() override;

    /** Devirtualized batch kernel (see Mmu::runBatchKernel). */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /** Kills the page's entries and its region's covering anchor. */
    void invalidatePage(Vpn vpn) override;

    /**
     * Cross-ASID shootdown. Anchor keys need the target's region table,
     * which is only loaded for the running process, so a non-current
     * target falls back to invalidateAsid (see Mmu::invalidatePage).
     */
    void invalidatePage(Vpn vpn, Asid target) override;

    void invalidateAsid(Asid target) override;

    /** Loads the new process's table and region table. */
    void switchProcess(const ProcessContext &ctx) override;

    const SetAssocTlb &l2Tlb() const { return l2_; }
    const RegionAnchorStats &regionStats() const { return stats_; }
    const RegionPartition &partition() const { return partition_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /**
     * Adds the unified-L2 4K/2M sets. The anchor set's key needs the
     * region lookup (a map walk) — too expensive for a prefetch hint.
     */
    void prefetchTranslate(Vpn vpn) const override;

    /** Retags the unified L2. */
    void applyAsid(Asid asid) override;

  private:
    SetAssocTlb l2_;
    RegionPartition partition_;
    RegionAnchorStats stats_;

    /** Region containing @p vpn, or nullptr. */
    const AnchorRegion *regionFor(Vpn vpn) const;

    /**
     * L2 key for an anchor: distance-tagged so regions never alias.
     * log2(distance) <= 16 needs 5 bits; packing it at bit 43 fills
     * the 48-bit scheme-key budget exactly — the bits above belong to
     * the ASID tag (tlb/set_assoc_tlb.hh) and must stay clear.
     */
    static constexpr unsigned anchorKeyLog2Shift = 43;
    static_assert(anchorKeyLog2Shift + 5 == tlbKeyAsidShift);

    static TlbKey
    anchorKey(Vpn avpn, AnchorDist distance)
    {
        // Tag-word packing, not page math.
        return TlbKey{distance.keyOf(avpn).raw() |
                      (static_cast<std::uint64_t>(distance.log2())
                       << anchorKeyLog2Shift)}; // lint-allow: page-shift
    }
};

} // namespace atlb

#endif // ANCHORTLB_MMU_REGION_ANCHOR_MMU_HH
