#include "cluster_mmu.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/page_table.hh"

namespace atlb
{

ClusterMmu::ClusterMmu(const MmuConfig &config, const PageTable &table,
                       bool use_2mb, std::string name)
    : Mmu(config, table,
          name.empty() ? (use_2mb ? "cluster-2mb" : "cluster") : name),
      regular_(config.cluster_regular_entries, config.cluster_regular_ways,
               this->name() + ".regular", SetProbe::SimdDispatch),
      cluster_(config.cluster_entries, config.cluster_ways,
               this->name() + ".cluster", SetProbe::SimdDispatch),
      use_2mb_(use_2mb), span_log2_(floorLog2(config.cluster_span))
{
    ATLB_ASSERT(isPow2(config.cluster_span) && config.cluster_span <= 32,
                "bad cluster span {}", config.cluster_span);
}

std::uint32_t
ClusterMmu::coalesceGroup(Vpn vpn, Ppn vpn_frame) const
{
    const unsigned span = config_.cluster_span;
    const Vpn group = vpn.alignDown(span);
    const unsigned offset = static_cast<unsigned>(vpn - group);
    // Physical frame the cluster's slot 0 would need for perfect
    // coalescing; slots coalesce iff their frame extends this base.
    const Ppn base = vpn_frame - offset;
    std::uint32_t bitmap = 0;
    for (unsigned i = 0; i < span; ++i) {
        // The span PTEs share one 64B cache line, so scanning them adds
        // no memory accesses to the walk (paper Section 2.1).
        const WalkResult w = table_->walk(group + i);
        if (w.present && w.size == PageSize::Base4K && w.ppn == base + i)
            bitmap |= 1u << i;
    }
    return bitmap;
}

void
ClusterMmu::prefetchTranslate(Vpn vpn) const
{
    regular_.prefetchSet(pageKey(vpn));
    if (use_2mb_)
        regular_.prefetchSet(hugeKey(vpn));
    cluster_.prefetchSet(groupKey(vpn, span_log2_));
    Mmu::prefetchTranslate(vpn);
}

TranslationResult
ClusterMmu::translateL2(Vpn vpn)
{
    const unsigned span = config_.cluster_span;

    if (const TlbEntry *e = regular_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    if (use_2mb_) {
        if (const TlbEntry *e =
                regular_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
            return {e->ppn + hugeOffset(vpn),
                    config_.l2_hit_cycles, HitLevel::L2Regular,
                    PageSize::Huge2M};
        }
    }
    // Cluster partition: searched in parallel with the regular one.
    const TlbKey cluster_key = groupKey(vpn, span_log2_);
    const unsigned offset = static_cast<unsigned>(vpn.offsetIn(span));
    if (const TlbEntry *e = cluster_.lookup(EntryKind::Cluster, cluster_key)) {
        if (e->aux & (1u << offset)) {
            return {e->ppn + offset, config_.coalesced_hit_cycles,
                    HitLevel::Coalesced, PageSize::Base4K};
        }
    }

    TranslationResult res =
        walkPageTable(vpn, config_.coalesced_hit_cycles);
    if (res.size == PageSize::Huge2M) {
        if (use_2mb_) {
            TlbEntry e;
            e.valid = true;
            e.kind = EntryKind::Page2M;
            e.key = hugeKey(vpn);
            e.ppn = res.ppn - hugeOffset(vpn);
            regular_.insert(e);
        } else {
            // The original cluster design has no 2MB support: cache the
            // requested 4KB frame of the huge mapping as a regular entry.
            TlbEntry e;
            e.valid = true;
            e.kind = EntryKind::Page4K;
            e.key = pageKey(vpn);
            e.ppn = res.ppn;
            regular_.insert(e);
            res.size = PageSize::Base4K;
        }
        return res;
    }

    const std::uint32_t bitmap = coalesceGroup(vpn, res.ppn);
    if (std::popcount(bitmap) >= 2) {
        TlbEntry e;
        e.valid = true;
        e.kind = EntryKind::Cluster;
        e.key = cluster_key;
        e.ppn = res.ppn - offset;
        e.aux = bitmap;
        cluster_.insert(e);
    } else {
        TlbEntry e;
        e.valid = true;
        e.kind = EntryKind::Page4K;
        e.key = pageKey(vpn);
        e.ppn = res.ppn;
        regular_.insert(e);
    }
    return res;
}

void
ClusterMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                           BatchStats &batch)
{
    runBatchKernel(accesses, n, batch,
                   [this](Vpn vpn) { return ClusterMmu::translateL2(vpn); });
}

void
ClusterMmu::flushAll()
{
    Mmu::flushAll();
    regular_.flush();
    cluster_.flush();
}

void
ClusterMmu::invalidatePage(Vpn vpn)
{
    Mmu::invalidatePage(vpn);
    regular_.invalidate(EntryKind::Page4K, pageKey(vpn));
    regular_.invalidate(EntryKind::Page2M, hugeKey(vpn));
    cluster_.invalidate(EntryKind::Cluster, groupKey(vpn, span_log2_));
}

void
ClusterMmu::invalidatePage(Vpn vpn, Asid target)
{
    Mmu::invalidatePage(vpn, target);
    regular_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    regular_.invalidate(EntryKind::Page2M, hugeKey(vpn), target);
    cluster_.invalidate(EntryKind::Cluster, groupKey(vpn, span_log2_),
                        target);
}

void
ClusterMmu::invalidateAsid(Asid target)
{
    Mmu::invalidateAsid(target);
    regular_.invalidateAsid(target);
    cluster_.invalidateAsid(target);
}

void
ClusterMmu::applyAsid(Asid asid)
{
    Mmu::applyAsid(asid);
    regular_.setAsid(asid);
    cluster_.setAsid(asid);
}

} // namespace atlb
