/**
 * @file
 * Baseline and THP MMUs: a conventional two-level TLB hierarchy.
 *
 * The unified L2 holds 4KB and 2MB entries (paper Table 3, shared
 * 1024-entry 8-way). "Base" and "THP" differ only in the page table the
 * OS built: without THP every mapping is 4KB; with THP, 2MB-eligible
 * regions are huge-mapped and the same hardware covers 512x more per
 * entry.
 */

#ifndef ANCHORTLB_MMU_BASELINE_MMU_HH
#define ANCHORTLB_MMU_BASELINE_MMU_HH

#include "mmu/mmu.hh"

namespace atlb
{

/** Conventional 4KB/2MB two-level TLB pipeline. */
class BaselineMmu : public Mmu
{
  public:
    BaselineMmu(const MmuConfig &config, const PageTable &table,
                std::string name = "base");

    void flushAll() override;
    void invalidatePage(Vpn vpn) override;
    void invalidatePage(Vpn vpn, Asid target) override;
    void invalidateAsid(Asid target) override;

    /** Devirtualized batch kernel (see Mmu::runBatchKernel). */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /** Per-page fills are host-safe: nested mode is supported. */
    bool supportsNested() const override { return true; }

    const SetAssocTlb &l2Tlb() const { return l2_; }
    const SetAssocTlb &l2Tlb1G() const { return l2_1g_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /** Adds the unified-L2 sets this scheme probes on an L1 miss. */
    void prefetchTranslate(Vpn vpn) const override;

    /** Retags the unified L2 and the 1GB side table. */
    void applyAsid(Asid asid) override;

    /** Fill the L2 with the result of a walk (4KB/2MB/1GB entry). */
    void fillL2(Vpn vpn, const TranslationResult &res);

    SetAssocTlb l2_;
    /** Separate small L2 for 1GB pages (paper Section 2.1). */
    SetAssocTlb l2_1g_;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_BASELINE_MMU_HH
