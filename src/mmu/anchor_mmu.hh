/**
 * @file
 * Hybrid TLB coalescing MMU — the paper's contribution (Section 3).
 *
 * The unified L2 TLB (1024-entry 8-way, Table 3) holds regular 4KB
 * entries, regular 2MB entries, and anchor entries side by side. For a
 * VPN that misses on the regular entries, the MMU computes the anchor
 * VPN by clearing the low log2(distance) bits and looks the anchor up in
 * the same L2; a hit whose contiguity covers the requested VPN completes
 * translation by adding (VPN - AVPN) to the anchor's physical frame
 * (Fig. 5b). Anchor entries are indexed by the bits immediately above
 * the distance bits (Fig. 6) so consecutive anchors spread over all TLB
 * sets; we realise this by keying anchors with AVPN >> log2(distance).
 *
 * The L2 miss flow follows Table 2 exactly:
 *
 *   regular | anchor | contiguity |
 *     hit   |   -    |     -      | done (7 cycles)
 *     miss  |  hit   |   match    | done (8 cycles)
 *     miss  |  hit   |  mismatch  | walk; fill regular entry
 *     miss  |  miss  |   match    | walk; fill anchor entry only
 *     miss  |  miss  |  mismatch  | walk; fill regular entry only
 *
 * On a walk both the regular PTE and the anchor PTE arrive (the anchor
 * check is off the critical path); only one of the two entries is
 * inserted, keeping the TLB free of redundant translations.
 *
 * The anchor distance is a per-process register restored on context
 * switch; changing it invalidates the TLBs (paper Section 3.3).
 */

#ifndef ANCHORTLB_MMU_ANCHOR_MMU_HH
#define ANCHORTLB_MMU_ANCHOR_MMU_HH

#include "mmu/mmu.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

/** Per-hit-type breakdown used for paper Table 5. */
struct AnchorMmuStats
{
    std::uint64_t anchor_hits = 0;
    std::uint64_t anchor_partial_misses = 0; //!< anchor hit, contig miss
    std::uint64_t anchor_fills = 0;
    std::uint64_t regular_fills = 0;
};

/** Anchor-based hybrid coalescing pipeline. */
class AnchorMmu : public Mmu
{
  public:
    /**
     * @param distance anchor distance; its page count must be a power
     *                 of two in [2, max_contiguity]. The page table
     *                 must have been swept with the same distance.
     */
    AnchorMmu(const MmuConfig &config, const PageTable &table,
              AnchorDist distance, std::string name = "anchor");

    void flushAll() override;

    /** Devirtualized batch kernel (see Mmu::runBatchKernel). */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /**
     * Invalidates the page's own entries *and* the anchor entry of its
     * block: the anchor's cached contiguity may claim the remapped
     * page.
     */
    void invalidatePage(Vpn vpn) override;

    /**
     * Cross-ASID shootdown. Anchor keys are formed with the current
     * distance register, so a target other than the running address
     * space falls back to invalidateAsid (see Mmu::invalidatePage).
     */
    void invalidatePage(Vpn vpn, Asid target) override;

    void invalidateAsid(Asid target) override;

    /** Loads the new process's table and anchor-distance register. */
    void switchProcess(const ProcessContext &ctx) override;

    /**
     * Nested mode supported: anchor coverage is clipped to runs that
     * are contiguous in the host dimension too, so combined GVA -> HPA
     * arithmetic stays exact.
     */
    bool supportsNested() const override { return true; }

    /**
     * Change the anchor distance register (after the OS has re-swept
     * the page table); flushes all TLBs like the paper's shootdown.
     */
    void setDistance(AnchorDist distance);

    AnchorDist distance() const { return distance_; }
    const SetAssocTlb &l2Tlb() const { return l2_; }
    /** Mutable L2 for corruption-injection tests (invariant checkers). */
    SetAssocTlb &l2TlbForTest() { return l2_; }
    const AnchorMmuStats &anchorStats() const { return anchor_stats_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /** Adds the unified-L2 sets (4K, 2M, anchor) probed on a miss. */
    void prefetchTranslate(Vpn vpn) const override;

    /** Retags the unified L2. */
    void applyAsid(Asid asid) override;

  private:
    SetAssocTlb l2_;
    AnchorDist distance_;
    AnchorMmuStats anchor_stats_;

    /** Anchor VPN of @p vpn under the current distance. */
    Vpn anchorOf(Vpn vpn) const { return distance_.anchorOf(vpn); }

    /** L2 key for the anchor entry at @p avpn (Fig. 6 indexing). */
    TlbKey anchorKey(Vpn avpn) const { return distance_.keyOf(avpn); }
};

} // namespace atlb

#endif // ANCHORTLB_MMU_ANCHOR_MMU_HH
