/**
 * @file
 * Hardware configuration for every translation scheme (paper Table 3).
 */

#ifndef ANCHORTLB_MMU_MMU_CONFIG_HH
#define ANCHORTLB_MMU_MMU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace atlb
{

/** TLB sizing and latency parameters; defaults reproduce paper Table 3. */
struct MmuConfig
{
    // L1 (common to all schemes)
    unsigned l1_4k_entries = 64;
    unsigned l1_4k_ways = 4;
    unsigned l1_2m_entries = 32;
    unsigned l1_2m_ways = 4;

    // Baseline / THP / RMM / Anchor shared L2
    unsigned l2_entries = 1024;
    unsigned l2_ways = 8;

    /**
     * Separate, smaller L2 TLB for 1GB pages (paper Section 2.1 notes
     * real x86 keeps 1GB entries apart). Only populated when the page
     * table contains 1GB leaves (the 1GB-page ablation).
     */
    unsigned l2_1g_entries = 16;
    unsigned l2_1g_ways = 4;

    // Cluster scheme: statically partitioned L2 (Pham et al. HPCA'14)
    unsigned cluster_regular_entries = 768;
    unsigned cluster_regular_ways = 6;
    unsigned cluster_entries = 320;
    unsigned cluster_ways = 5;
    /** Pages per cluster entry (the paper evaluates cluster-8). */
    unsigned cluster_span = 8;

    // CoLT fully-associative mode (Pham et al., MICRO 2012)
    unsigned colt_fa_entries = 32;       //!< FA coalesced entries
    std::uint64_t colt_fa_max_pages = 64; //!< max run per FA entry
    std::uint64_t colt_fa_min_pages = 8;  //!< runs below this go SA

    // RMM range TLB
    unsigned range_entries = 32;
    /**
     * Smallest contiguous run RMM records as a range. RMM's ranges come
     * from eager-paging reservations of large allocations; runs below a
     * huge page are left to the regular TLBs (this is what makes RMM
     * ineffective under the paper's low/medium-contiguity mappings,
     * Fig. 2, while nearly eliminating misses under high/max).
     */
    std::uint64_t rmm_min_range_pages = 512;

    // Latencies (cycles); L1 hits are fully hidden by cache access.
    Cycles l2_hit_cycles = 7;
    Cycles coalesced_hit_cycles = 8; //!< cluster / RMM / anchor hit
    Cycles walk_cycles = 50;

    /**
     * Optional page-walk-cache model: when enabled, a walk costs one
     * memory reference per uncached page-table level instead of the
     * flat walk_cycles (see tlb/walk_cache.hh). Defaults keep the
     * paper's Table 3 model.
     */
    bool pwc_enabled = false;
    unsigned pwc_pml4e_entries = 2;
    unsigned pwc_pdpte_entries = 4;
    unsigned pwc_pde_entries = 32;
    Cycles pwc_mem_ref_cycles = 14;

    /** Maximum anchor contiguity (16-bit field in the paper). */
    std::uint64_t max_contiguity = 1ULL << 16;

    /**
     * Per-memory-reference cost of a nested (2D) page walk. A native
     * 4KB walk touches 4 entries for walk_cycles total; a virtualized
     * walk touches (g+1)(h+1)-1 = up to 24 (paper Section 6's
     * motivation for nested-translation work). Used only when an MMU
     * runs in nested mode.
     */
    Cycles nested_ref_cycles = 12;

    /**
     * TLB shootdown cost model (multi-tenant ASID retention). Under
     * flush-on-switch a descheduled process's remaps cost nothing —
     * the next switch flushes anyway — but retained ASID-tagged
     * entries make every remap an inter-processor-interrupt round:
     * the initiating core spends shootdown_initiator_cycles setting up
     * and waiting out the IPI, and every other core sharing the
     * address space takes an interrupt, invalidates, and acknowledges
     * (shootdown_responder_cycles each), plus a small per-page charge
     * for each extra INVLPG in the same batch. The shape (flat
     * initiator + per-responder cost dwarfing the per-page increment)
     * follows the published IPI measurements the ROADMAP references
     * (bitcharmer's tlb_shootdowns: single-page shootdown latency is
     * microseconds-scale, dominated by the interrupt round-trip, and
     * grows mildly with responder count and page count); defaults are
     * cycles at the simulator's nominal clock, deliberately coarse —
     * the experiments compare policies under one cost model rather
     * than predict absolute wall time (DESIGN.md).
     *
     * Past shootdown_full_flush_pages the per-page INVLPG batch stops
     * paying: responders flush their whole TLB in one go instead, so
     * the per-page term caps there (Linux's
     * tlb_single_page_flush_ceiling, default 33, models the same
     * break-even). Without the cap a whole-address-space remap would
     * charge per-page IPI work for millions of pages — a full
     * migration's bill, not a shootdown round's.
     */
    Cycles shootdown_initiator_cycles = 4000;
    Cycles shootdown_responder_cycles = 2500;
    Cycles shootdown_page_cycles = 150;
    std::uint64_t shootdown_full_flush_pages = 33;
};

/**
 * Cycles one shootdown charges: @p responders remote cores each take
 * the IPI, plus the initiator's setup/wait, plus the per-page INVLPG
 * increment for a @p pages -page batch (at least one page, capped at
 * the full-flush ceiling — past it responders flush everything).
 */
constexpr Cycles
shootdownCost(const MmuConfig &config, unsigned responders,
              std::uint64_t pages)
{
    const std::uint64_t batch =
        pages > 0 ? (pages < config.shootdown_full_flush_pages
                         ? pages
                         : config.shootdown_full_flush_pages)
                  : 1;
    return config.shootdown_initiator_cycles +
           responders * config.shootdown_responder_cycles +
           batch * config.shootdown_page_cycles;
}

} // namespace atlb

#endif // ANCHORTLB_MMU_MMU_CONFIG_HH
