/**
 * @file
 * Cluster TLB MMU (Pham et al., "Increasing TLB reach by exploiting
 * clustering in page translations", HPCA 2014; paper Section 2.1).
 *
 * The L2 is statically partitioned into a regular TLB (768-entry 6-way)
 * and a cluster TLB (320-entry 5-way) whose entries cover an aligned
 * cluster of 8 contiguous VPNs. On a miss, the page-walk hardware scans
 * the 8 PTEs sharing the requested PTE's cache line and coalesces the
 * pages whose physical frames sit at matching offsets from the cluster
 * base; if at least two coalesce, a cluster entry is filled, otherwise a
 * regular entry.
 *
 * The plain "cluster" variant ignores 2MB pages (the original design);
 * "cluster-2MB" additionally caches 2MB translations in the regular
 * partition, which is the stronger baseline the paper adds for fairness.
 */

#ifndef ANCHORTLB_MMU_CLUSTER_MMU_HH
#define ANCHORTLB_MMU_CLUSTER_MMU_HH

#include "mmu/mmu.hh"

namespace atlb
{

/** HW-coalescing cluster TLB pipeline. */
class ClusterMmu : public Mmu
{
  public:
    /**
     * @param use_2mb enable 2MB entries in the regular partition
     *                (the paper's "cluster-2MB" configuration).
     */
    ClusterMmu(const MmuConfig &config, const PageTable &table,
               bool use_2mb, std::string name = "");

    void flushAll() override;

    /** Devirtualized batch kernel (see Mmu::runBatchKernel). */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /** Also kills the cluster entry covering the page's group. */
    void invalidatePage(Vpn vpn) override;

    /** Cluster keys are register-free: cross-ASID shootdown is exact. */
    void invalidatePage(Vpn vpn, Asid target) override;

    void invalidateAsid(Asid target) override;

    const SetAssocTlb &regularTlb() const { return regular_; }
    const SetAssocTlb &clusterTlb() const { return cluster_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /** Adds the regular and cluster L2 sets probed on a miss. */
    void prefetchTranslate(Vpn vpn) const override;

    /** Retags both L2 partitions. */
    void applyAsid(Asid asid) override;

  private:
    SetAssocTlb regular_;
    SetAssocTlb cluster_;
    bool use_2mb_;
    unsigned span_log2_; //!< log2(cluster_span), for cluster TlbKeys

    /**
     * Coalesce the aligned PTE group containing @p vpn into a validity
     * bitmap relative to the cluster base frame.
     */
    std::uint32_t coalesceGroup(Vpn vpn, Ppn vpn_frame) const;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_CLUSTER_MMU_HH
