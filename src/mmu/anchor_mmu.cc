#include "anchor_mmu.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"

namespace atlb
{

AnchorMmu::AnchorMmu(const MmuConfig &config, const PageTable &table,
                     AnchorDist distance, std::string name)
    : Mmu(config, table, std::move(name)),
      l2_(config.l2_entries, config.l2_ways, this->name() + ".l2",
          SetProbe::SimdDispatch),
      distance_(distance)
{
    ATLB_ASSERT(distance.valid() &&
                    distance.pages() <= config.max_contiguity,
                "bad anchor distance {}", distance);
}

void
AnchorMmu::switchProcess(const ProcessContext &ctx)
{
    ATLB_ASSERT(!ctx.anchor_distance.none(),
                "anchor scheme needs a per-process distance");
    ATLB_ASSERT(ctx.anchor_distance.valid() &&
                    ctx.anchor_distance.pages() <= config_.max_contiguity,
                "bad anchor distance {}", ctx.anchor_distance);
    // Load the register directly rather than through setDistance: a
    // switch under ASID retention must NOT flush — each process's
    // anchor entries carry its ASID tag, so distances coexist. Under
    // the flush policy the base switch flushes right after, preserving
    // the paper's behaviour. setDistance keeps its flush for
    // *in-process* distance changes, where old-distance entries would
    // otherwise go stale.
    distance_ = ctx.anchor_distance;
    Mmu::switchProcess(ctx);
}

void
AnchorMmu::setDistance(AnchorDist distance)
{
    ATLB_ASSERT(distance.valid() &&
                    distance.pages() <= config_.max_contiguity,
                "bad anchor distance {}", distance);
    distance_ = distance;
    flushAll();
}

void
AnchorMmu::prefetchTranslate(Vpn vpn) const
{
    l2_.prefetchSet(pageKey(vpn));
    l2_.prefetchSet(hugeKey(vpn));
    l2_.prefetchSet(anchorKey(anchorOf(vpn)));
    Mmu::prefetchTranslate(vpn);
}

TranslationResult
AnchorMmu::translateL2(Vpn vpn)
{
    // Regular entries first (4KB, then 2MB), sharing the unified L2.
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
        return {e->ppn + hugeOffset(vpn), config_.l2_hit_cycles,
                HitLevel::L2Regular, PageSize::Huge2M};
    }

    const Vpn avpn = anchorOf(vpn);
    const std::uint64_t offset = distance_.offsetOf(vpn);
    bool anchor_entry_present = false;
    if (const TlbEntry *e = l2_.lookup(EntryKind::Anchor, anchorKey(avpn))) {
        anchor_entry_present = true;
        if (offset < e->aux) {
            ++anchor_stats_.anchor_hits;
            return {e->ppn + offset, config_.coalesced_hit_cycles,
                    HitLevel::Coalesced, PageSize::Base4K};
        }
        // Anchor cached but this VPN lies beyond its contiguity: the
        // translation exists only in the regular PTE (Table 2, row 3).
        ++anchor_stats_.anchor_partial_misses;
    }

    TranslationResult res =
        walkPageTable(vpn, config_.coalesced_hit_cycles);

    // The walker also fetched the anchor entry (same or nearby cache
    // line); decide which single entry to fill (Table 2, rows 3-5).
    // Huge-mapped pages can be anchor-covered too: an anchor whose run
    // spans THP pages translates them like any other page of the run.
    std::uint64_t contig = table_->anchorContiguity(avpn, distance_);
    if (nested() && contig > 0) {
        // Guest contiguity only helps if the guest-physical run is
        // also host-contiguous: clip to the host run from the anchor's
        // GPA (the hypervisor exposes this like the guest OS exposes
        // its own contiguity).
        const Ppn anchor_gpa = res.guest_ppn - offset;
        contig = std::min<std::uint64_t>(
            contig, host_map_->contiguityFrom(hostVpnOf(anchor_gpa)));
    }
    const bool covered = offset < contig;

    if (covered && !anchor_entry_present) {
        TlbEntry e;
        e.valid = true;
        e.kind = EntryKind::Anchor;
        e.key = anchorKey(avpn);
        // Physical frame of the anchor page itself: the requested frame
        // minus the in-run offset (both lie in the same contiguous run).
        e.ppn = res.ppn - offset;
        e.aux = static_cast<std::uint32_t>(contig);
        l2_.insert(e);
        ++anchor_stats_.anchor_fills;
    } else if (!covered) {
        TlbEntry e;
        e.valid = true;
        if (res.size == PageSize::Huge2M) {
            e.kind = EntryKind::Page2M;
            e.key = hugeKey(vpn);
            e.ppn = res.ppn - hugeOffset(vpn);
        } else {
            e.kind = EntryKind::Page4K;
            e.key = pageKey(vpn);
            e.ppn = res.ppn;
        }
        l2_.insert(e);
        ++anchor_stats_.regular_fills;
    }
    // covered && anchor_entry_present (Table 2 row 3 after the walk):
    // the anchor is already cached; nothing new to insert.
    return res;
}

void
AnchorMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                          BatchStats &batch)
{
    runBatchKernel(accesses, n, batch,
                   [this](Vpn vpn) { return AnchorMmu::translateL2(vpn); });
}

void
AnchorMmu::flushAll()
{
    Mmu::flushAll();
    l2_.flush();
}

void
AnchorMmu::invalidatePage(Vpn vpn)
{
    Mmu::invalidatePage(vpn);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn));
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn));
    l2_.invalidate(EntryKind::Anchor, anchorKey(anchorOf(vpn)));
}

void
AnchorMmu::invalidatePage(Vpn vpn, Asid target)
{
    if (target != currentAsid()) {
        // The anchor key needs the target's distance register, which
        // is not loaded; over-invalidate the whole address space
        // rather than risk a stale anchor surviving.
        invalidateAsid(target);
        return;
    }
    Mmu::invalidatePage(vpn, target);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn), target);
    l2_.invalidate(EntryKind::Anchor, anchorKey(anchorOf(vpn)), target);
}

void
AnchorMmu::invalidateAsid(Asid target)
{
    Mmu::invalidateAsid(target);
    l2_.invalidateAsid(target);
}

void
AnchorMmu::applyAsid(Asid asid)
{
    Mmu::applyAsid(asid);
    l2_.setAsid(asid);
}

} // namespace atlb
