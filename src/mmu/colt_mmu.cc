#include "colt_mmu.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/page_table.hh"

namespace atlb
{

ColtMmu::ColtMmu(const MmuConfig &config, const PageTable &table,
                 std::string name)
    : Mmu(config, table, std::move(name)),
      regular_(config.cluster_regular_entries, config.cluster_regular_ways,
               this->name() + ".regular", SetProbe::SimdDispatch),
      coalesced_(config.cluster_entries, config.cluster_ways,
                 this->name() + ".sa", SetProbe::SimdDispatch),
      fa_(config.colt_fa_entries)
{
    ATLB_ASSERT(isPow2(config.colt_fa_max_pages),
                "colt_fa_max_pages must be a power of two");
}

RangeEntry
ColtMmu::scanRun(Vpn vpn, Ppn vpn_frame) const
{
    const std::uint64_t window = config_.colt_fa_max_pages;
    const Vpn lo = vpn.alignDown(window);
    const Vpn hi = lo + window;
    RangeEntry run;
    run.vpn_start = vpn;
    run.vpn_end = vpn + 1;
    run.ppn_start = vpn_frame;
    // Grow backward then forward while translations stay contiguous.
    while (run.vpn_start > lo) {
        const WalkResult w = table_->walk(run.vpn_start - 1);
        if (!w.present || w.size != PageSize::Base4K ||
            w.ppn + 1 != run.ppn_start)
            break;
        --run.vpn_start;
        --run.ppn_start;
    }
    while (run.vpn_end < hi) {
        const WalkResult w = table_->walk(run.vpn_end);
        if (!w.present || w.size != PageSize::Base4K ||
            w.ppn != run.translate(run.vpn_end))
            break;
        ++run.vpn_end;
    }
    return run;
}

void
ColtMmu::prefetchTranslate(Vpn vpn) const
{
    regular_.prefetchSet(pageKey(vpn));
    coalesced_.prefetchSet(TlbKey{vpn.raw() / config_.cluster_span});
    Mmu::prefetchTranslate(vpn);
}

TranslationResult
ColtMmu::translateL2(Vpn vpn)
{
    const unsigned span = config_.cluster_span;

    if (const TlbEntry *e = regular_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    // CoLT does not require a power-of-two span, so the cluster key is
    // an explicit scheme-specific encoding (plain division), not a
    // groupKey().
    const TlbKey cluster_key{vpn.raw() / span};
    const unsigned offset = static_cast<unsigned>(vpn.raw() & (span - 1));
    if (const TlbEntry *e =
            coalesced_.lookup(EntryKind::Cluster, cluster_key)) {
        if (e->aux & (1u << offset)) {
            return {e->ppn + offset, config_.coalesced_hit_cycles,
                    HitLevel::Coalesced, PageSize::Base4K};
        }
    }
    if (const RangeEntry *r = fa_.lookup(vpn)) {
        return {r->translate(vpn), config_.coalesced_hit_cycles,
                HitLevel::Coalesced, PageSize::Base4K};
    }

    TranslationResult res =
        walkPageTable(vpn, config_.coalesced_hit_cycles);
    if (res.size == PageSize::Huge2M) {
        // Original CoLT has no 2MB support: cache the 4KB frame.
        TlbEntry e;
        e.valid = true;
        e.kind = EntryKind::Page4K;
        e.key = pageKey(vpn);
        e.ppn = res.ppn;
        regular_.insert(e);
        res.size = PageSize::Base4K;
        return res;
    }

    const RangeEntry run = scanRun(vpn, res.ppn);
    const std::uint64_t run_pages = run.vpn_end - run.vpn_start;

    // Long runs additionally get an FA entry; the SA fill below happens
    // regardless so the FA array is pure extra coverage.
    if (run_pages >= config_.colt_fa_min_pages)
        fa_.insert(run);

    if (run_pages >= 2) {
        // Clip the run to the vpn's aligned group for the SA bitmap.
        const Vpn group = vpn.alignDown(span);
        std::uint32_t bitmap = 0;
        for (unsigned i = 0; i < span; ++i) {
            const Vpn v = group + i;
            if (v >= run.vpn_start && v < run.vpn_end)
                bitmap |= 1u << i;
        }
        if (std::popcount(bitmap) >= 2) {
            TlbEntry e;
            e.valid = true;
            e.kind = EntryKind::Cluster;
            e.key = cluster_key;
            e.ppn = run.translate(group); // frame slot 0 would use
            e.aux = bitmap;
            coalesced_.insert(e);
            return res;
        }
    }
    TlbEntry e;
    e.valid = true;
    e.kind = EntryKind::Page4K;
    e.key = pageKey(vpn);
    e.ppn = res.ppn;
    regular_.insert(e);
    return res;
}

void
ColtMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch)
{
    runBatchKernel(accesses, n, batch,
                   [this](Vpn vpn) { return ColtMmu::translateL2(vpn); });
}

void
ColtMmu::flushAll()
{
    Mmu::flushAll();
    regular_.flush();
    coalesced_.flush();
    fa_.flush();
}

void
ColtMmu::invalidatePage(Vpn vpn)
{
    Mmu::invalidatePage(vpn);
    regular_.invalidate(EntryKind::Page4K, pageKey(vpn));
    coalesced_.invalidate(EntryKind::Cluster,
                          TlbKey{vpn.raw() / config_.cluster_span});
    fa_.invalidateContaining(vpn);
}

void
ColtMmu::invalidatePage(Vpn vpn, Asid target)
{
    Mmu::invalidatePage(vpn, target);
    regular_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    coalesced_.invalidate(EntryKind::Cluster,
                          TlbKey{vpn.raw() / config_.cluster_span}, target);
    fa_.invalidateContaining(vpn, target);
}

void
ColtMmu::invalidateAsid(Asid target)
{
    Mmu::invalidateAsid(target);
    regular_.invalidateAsid(target);
    coalesced_.invalidateAsid(target);
    fa_.invalidateAsid(target);
}

void
ColtMmu::applyAsid(Asid asid)
{
    Mmu::applyAsid(asid);
    regular_.setAsid(asid);
    coalesced_.setAsid(asid);
    fa_.setAsid(asid);
}

} // namespace atlb
