#include "region_anchor_mmu.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/page_table.hh"

namespace atlb
{

RegionAnchorMmu::RegionAnchorMmu(const MmuConfig &config,
                                 const PageTable &table,
                                 RegionPartition partition,
                                 std::string name)
    : Mmu(config, table, std::move(name)),
      l2_(config.l2_entries, config.l2_ways, this->name() + ".l2",
          SetProbe::SimdDispatch),
      partition_(std::move(partition))
{
    ATLB_ASSERT(partition_.regions.size() <= maxRegions,
                "region table overflow: {} > {}",
                partition_.regions.size(), maxRegions);
    for (const AnchorRegion &r : partition_.regions) {
        ATLB_ASSERT(r.distance.valid() &&
                        r.distance.pages() <= config.max_contiguity,
                    "bad region distance {}", r.distance);
        ATLB_ASSERT(r.begin < r.end, "empty region");
    }
}

const AnchorRegion *
RegionAnchorMmu::regionFor(Vpn vpn) const
{
    // Parallel CAM search in hardware; the table is tiny.
    for (const AnchorRegion &r : partition_.regions)
        if (r.contains(vpn))
            return &r;
    return nullptr;
}

void
RegionAnchorMmu::prefetchTranslate(Vpn vpn) const
{
    l2_.prefetchSet(pageKey(vpn));
    l2_.prefetchSet(hugeKey(vpn));
    Mmu::prefetchTranslate(vpn);
}

TranslationResult
RegionAnchorMmu::translateL2(Vpn vpn)
{
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
        return {e->ppn + hugeOffset(vpn), config_.l2_hit_cycles,
                HitLevel::L2Regular, PageSize::Huge2M};
    }

    const AnchorRegion *region = regionFor(vpn);
    AnchorDist distance = partition_.default_distance;
    if (region)
        distance = region->distance;
    else
        ++stats_.region_misses;
    const Vpn avpn = distance.anchorOf(vpn);
    const std::uint64_t offset = distance.offsetOf(vpn);

    // Anchors before the region's start were swept with the previous
    // region's distance: not usable here.
    const bool anchor_in_region = !region || avpn >= region->begin;
    if (anchor_in_region) {
        if (const TlbEntry *e =
                l2_.lookup(EntryKind::Anchor, anchorKey(avpn, distance))) {
            if (offset < e->aux) {
                ++stats_.anchor_hits;
                return {e->ppn + offset, config_.coalesced_hit_cycles,
                        HitLevel::Coalesced, PageSize::Base4K};
            }
        }
    }

    TranslationResult res =
        walkPageTable(vpn, config_.coalesced_hit_cycles);

    const std::uint64_t contig =
        anchor_in_region ? table_->anchorContiguity(avpn, distance) : 0;
    if (offset < contig) {
        TlbEntry e;
        e.valid = true;
        e.kind = EntryKind::Anchor;
        e.key = anchorKey(avpn, distance);
        e.ppn = res.ppn - offset;
        e.aux = static_cast<std::uint32_t>(contig);
        l2_.insert(e);
        ++stats_.anchor_fills;
    } else {
        TlbEntry e;
        e.valid = true;
        if (res.size == PageSize::Huge2M) {
            e.kind = EntryKind::Page2M;
            e.key = hugeKey(vpn);
            e.ppn = res.ppn - hugeOffset(vpn);
        } else {
            e.kind = EntryKind::Page4K;
            e.key = pageKey(vpn);
            e.ppn = res.ppn;
        }
        l2_.insert(e);
        ++stats_.regular_fills;
    }
    return res;
}

void
RegionAnchorMmu::switchProcess(const ProcessContext &ctx)
{
    ATLB_ASSERT(ctx.partition, "region scheme needs a region table");
    ATLB_ASSERT(ctx.partition->regions.size() <= maxRegions,
                "region table overflow");
    partition_ = *ctx.partition;
    Mmu::switchProcess(ctx);
}

void
RegionAnchorMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                                BatchStats &batch)
{
    runBatchKernel(accesses, n, batch, [this](Vpn vpn) {
        return RegionAnchorMmu::translateL2(vpn);
    });
}

void
RegionAnchorMmu::flushAll()
{
    Mmu::flushAll();
    l2_.flush();
}

void
RegionAnchorMmu::invalidatePage(Vpn vpn)
{
    Mmu::invalidatePage(vpn);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn));
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn));
    AnchorDist distance = partition_.default_distance;
    if (const AnchorRegion *region = regionFor(vpn))
        distance = region->distance;
    const Vpn avpn = distance.anchorOf(vpn);
    l2_.invalidate(EntryKind::Anchor, anchorKey(avpn, distance));
}

void
RegionAnchorMmu::invalidatePage(Vpn vpn, Asid target)
{
    if (target != currentAsid()) {
        // The anchor key needs the target's region table, which is not
        // loaded; over-invalidate the whole address space rather than
        // risk a stale anchor surviving.
        invalidateAsid(target);
        return;
    }
    Mmu::invalidatePage(vpn, target);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn), target);
    AnchorDist distance = partition_.default_distance;
    if (const AnchorRegion *region = regionFor(vpn))
        distance = region->distance;
    const Vpn avpn = distance.anchorOf(vpn);
    l2_.invalidate(EntryKind::Anchor, anchorKey(avpn, distance), target);
}

void
RegionAnchorMmu::invalidateAsid(Asid target)
{
    Mmu::invalidateAsid(target);
    l2_.invalidateAsid(target);
}

void
RegionAnchorMmu::applyAsid(Asid asid)
{
    Mmu::applyAsid(asid);
    l2_.setAsid(asid);
}

} // namespace atlb
