/**
 * @file
 * Redundant Memory Mappings MMU (Karakostas et al., ISCA 2015; paper
 * Section 2.1 and Table 3).
 *
 * RMM keeps the baseline two-level TLB and adds a 32-entry fully-
 * associative range TLB backed by an OS-maintained range table that
 * redundantly maps every contiguous region of the process. On an L2
 * miss the range TLB is searched; on a full miss the walker fetches the
 * 4KB/2MB entry for the critical access and the range-table walker
 * refills the containing range.
 *
 * Our range table is the MemoryMap itself: each maximal VA/PA-contiguous
 * chunk is one range, which is exactly what an eager-paging OS would
 * record.
 */

#ifndef ANCHORTLB_MMU_RMM_MMU_HH
#define ANCHORTLB_MMU_RMM_MMU_HH

#include "mmu/baseline_mmu.hh"
#include "tlb/range_tlb.hh"

namespace atlb
{

class MemoryMap;

/** Baseline TLBs plus a fully-associative range TLB. */
class RmmMmu : public BaselineMmu
{
  public:
    RmmMmu(const MmuConfig &config, const PageTable &table,
           const MemoryMap &range_table, std::string name = "rmm");

    void flushAll() override;

    /**
     * Re-devirtualized for RMM: BaselineMmu's kernel would statically
     * bind the baseline L2 pipeline, not the range-TLB one.
     */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /** Also kills any cached range covering the page. */
    void invalidatePage(Vpn vpn) override;

    /** Range slots carry their own ASID: cross-ASID shootdown is exact. */
    void invalidatePage(Vpn vpn, Asid target) override;

    void invalidateAsid(Asid target) override;

    /** Loads the new process's table and range table. */
    void switchProcess(const ProcessContext &ctx) override;

    const RangeTlb &rangeTlb() const { return range_tlb_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /** Retags the range TLB on top of the baseline structures. */
    void applyAsid(Asid asid) override;

  private:
    const MemoryMap *range_table_;
    RangeTlb range_tlb_;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_RMM_MMU_HH
