#include "baseline_mmu.hh"

namespace atlb
{

BaselineMmu::BaselineMmu(const MmuConfig &config, const PageTable &table,
                         std::string name)
    : Mmu(config, table, name),
      l2_(config.l2_entries, config.l2_ways, name + ".l2",
          SetProbe::SimdDispatch),
      l2_1g_(config.l2_1g_entries, config.l2_1g_ways, name + ".l2-1g",
             SetProbe::SimdDispatch)
{
}

void
BaselineMmu::prefetchTranslate(Vpn vpn) const
{
    l2_.prefetchSet(pageKey(vpn));
    l2_.prefetchSet(hugeKey(vpn));
    // The 1GB side table is small and rarely hit; not worth a hint.
    Mmu::prefetchTranslate(vpn);
}

TranslationResult
BaselineMmu::translateL2(Vpn vpn)
{
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page4K, pageKey(vpn))) {
        return {e->ppn, config_.l2_hit_cycles, HitLevel::L2Regular,
                PageSize::Base4K};
    }
    if (const TlbEntry *e = l2_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
        return {e->ppn + hugeOffset(vpn), config_.l2_hit_cycles,
                HitLevel::L2Regular, PageSize::Huge2M};
    }
    if (const TlbEntry *e =
            l2_1g_.lookup(EntryKind::Page1G, giantKey(vpn))) {
        return {e->ppn + giantOffset(vpn), config_.l2_hit_cycles,
                HitLevel::L2Regular, PageSize::Giant1G};
    }
    TranslationResult res = walkPageTable(vpn, config_.l2_hit_cycles);
    fillL2(vpn, res);
    return res;
}

void
BaselineMmu::fillL2(Vpn vpn, const TranslationResult &res)
{
    TlbEntry e;
    e.valid = true;
    if (res.size == PageSize::Giant1G) {
        e.kind = EntryKind::Page1G;
        e.key = giantKey(vpn);
        e.ppn = res.ppn - giantOffset(vpn);
        l2_1g_.insert(e);
        return;
    }
    if (res.size == PageSize::Huge2M) {
        e.kind = EntryKind::Page2M;
        e.key = hugeKey(vpn);
        e.ppn = res.ppn - hugeOffset(vpn);
    } else {
        e.kind = EntryKind::Page4K;
        e.key = pageKey(vpn);
        e.ppn = res.ppn;
    }
    l2_.insert(e);
}

void
BaselineMmu::translateBatch(const MemAccess *accesses, std::size_t n,
                            BatchStats &batch)
{
    // The qualified call binds BaselineMmu's L2 pipeline statically —
    // the whole batch runs without virtual dispatch.
    runBatchKernel(accesses, n, batch,
                   [this](Vpn vpn) { return BaselineMmu::translateL2(vpn); });
}

void
BaselineMmu::flushAll()
{
    Mmu::flushAll();
    l2_.flush();
    l2_1g_.flush();
}

void
BaselineMmu::invalidatePage(Vpn vpn)
{
    Mmu::invalidatePage(vpn);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn));
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn));
    l2_1g_.invalidate(EntryKind::Page1G, giantKey(vpn));
}

void
BaselineMmu::invalidatePage(Vpn vpn, Asid target)
{
    // Per-page keys carry no per-process register state, so the
    // cross-ASID shootdown is exact.
    Mmu::invalidatePage(vpn, target);
    l2_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    l2_.invalidate(EntryKind::Page2M, hugeKey(vpn), target);
    l2_1g_.invalidate(EntryKind::Page1G, giantKey(vpn), target);
}

void
BaselineMmu::invalidateAsid(Asid target)
{
    Mmu::invalidateAsid(target);
    l2_.invalidateAsid(target);
    l2_1g_.invalidateAsid(target);
}

void
BaselineMmu::applyAsid(Asid asid)
{
    Mmu::applyAsid(asid);
    l2_.setAsid(asid);
    l2_1g_.setAsid(asid);
}

} // namespace atlb
