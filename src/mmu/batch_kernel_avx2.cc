/**
 * @file
 * AVX2 instantiation of the vectorised batch kernel.
 *
 * Like common/simd_avx2.cc this TU is compiled with -mavx2 (pinned
 * per-source in src/mmu/CMakeLists.txt) and reached only through the
 * construction-time dispatch in Mmu::Mmu, which checks the CPU first —
 * so AVX2 code generation never leaks into the core. The Isa policy
 * wraps the shared inline kernel bodies from common/simd_kernels.hh:
 * the same code the dispatch pointers hand out (and the differential
 * tests pin), here inlined into the batch loop so the probe and the
 * pre-pass cost no call.
 */

#if defined(__x86_64__)

#include "common/simd_kernels.hh"
#include "mmu/batch_kernel.hh"

namespace atlb
{

namespace
{

struct Avx2Isa
{
    static int
    find(const std::uint64_t *words, unsigned count, std::uint64_t want)
    {
        return simd_avx2::findU64Inline(words, count, want);
    }

    static void
    vpnEq(const std::uint8_t *accesses, std::size_t count,
          unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
          std::uint64_t *eqbits)
    {
        simd_avx2::vpnEqInline(accesses, count, shift, prev, vpns,
                               eqbits);
    }
};

} // namespace

void
Mmu::batchKernelAvx2(const MemAccess *accesses, std::size_t n,
                     BatchStats &batch)
{
    runBatchKernelVecT<Avx2Isa>(accesses, n, batch);
}

} // namespace atlb

#endif // defined(__x86_64__)
