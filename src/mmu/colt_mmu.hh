/**
 * @file
 * CoLT MMU (Pham et al., "CoLT: Coalesced Large-Reach TLBs",
 * MICRO 2012) with its fully-associative mode — the paper's Section 2.1
 * notes that CoLT-FA "supports a much larger number of coalesced
 * contiguous pages [but] requires a fully associative lookup, which in
 * turn restricts the number of entries available".
 *
 * Structure: the set-associative coalesced partition works like the
 * cluster TLB (aligned groups with a validity bitmap); on top of it, a
 * small fully-associative array holds variable-length runs of up to
 * colt_fa_max_pages contiguous pages, found by the walker scanning
 * neighbouring PTEs. Long runs go to the FA part, short ones to the SA
 * part, singletons to the regular TLB.
 */

#ifndef ANCHORTLB_MMU_COLT_MMU_HH
#define ANCHORTLB_MMU_COLT_MMU_HH

#include "mmu/mmu.hh"
#include "tlb/range_tlb.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

/** HW coalescing with set-associative and fully-associative parts. */
class ColtMmu : public Mmu
{
  public:
    ColtMmu(const MmuConfig &config, const PageTable &table,
            std::string name = "colt-fa");

    void flushAll() override;

    /** Devirtualized batch kernel (see Mmu::runBatchKernel). */
    void translateBatch(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch) override;

    /** Kills the page's entries and any coalesced entry covering it. */
    void invalidatePage(Vpn vpn) override;

    /** CoLT keys are register-free: cross-ASID shootdown is exact. */
    void invalidatePage(Vpn vpn, Asid target) override;

    void invalidateAsid(Asid target) override;

    const SetAssocTlb &regularTlb() const { return regular_; }
    const SetAssocTlb &coalescedTlb() const { return coalesced_; }
    const RangeTlb &faTlb() const { return fa_; }

  protected:
    TranslationResult translateL2(Vpn vpn) override;

    /** Adds the regular and coalesced L2 sets probed on a miss. */
    void prefetchTranslate(Vpn vpn) const override;

    /** Retags both SA partitions and the FA array. */
    void applyAsid(Asid asid) override;

  private:
    SetAssocTlb regular_;
    SetAssocTlb coalesced_;
    RangeTlb fa_;

    /**
     * Maximal contiguous run around @p vpn, discovered by scanning
     * PTEs within the aligned colt_fa_max_pages window (bounded PTE
     * fetch, like the HW's cache-line scans).
     */
    RangeEntry scanRun(Vpn vpn, Ppn vpn_frame) const;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_COLT_MMU_HH
