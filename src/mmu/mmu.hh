/**
 * @file
 * Abstract MMU: L1 TLBs plus a scheme-specific L2 pipeline.
 *
 * Every scheme shares the L1 organisation of paper Table 3 (64-entry
 * 4-way for 4KB, 32-entry 4-way for 2MB; hits fully hidden). On an L1
 * miss the scheme-specific translateL2() runs; subclasses implement the
 * baseline, cluster, RMM and anchor pipelines. Latency accounting:
 *
 *   L1 hit                 : 0 cycles
 *   L2 regular entry hit   : l2_hit_cycles (7)
 *   coalesced-structure hit: coalesced_hit_cycles (8)
 *   page walk              : lookup latency + walk_cycles (50)
 *
 * Subclasses return both the physical page and the attribution bucket so
 * the simulator can reproduce the paper's CPI breakdowns (Figs. 10-11)
 * and the L2 hit-type table (Table 5).
 */

#ifndef ANCHORTLB_MMU_MMU_HH
#define ANCHORTLB_MMU_MMU_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "mmu/mmu_config.hh"
#include "tlb/set_assoc_tlb.hh"
#include "tlb/walk_cache.hh"

namespace atlb
{

class MemoryMap;
class PageTable;
struct RegionPartition;

/**
 * Everything the hardware needs when the OS schedules a process: the
 * page-table root (CR3), and — for the coalescing schemes — the anchor
 * distance register, the range table, or the region table. Pointers
 * not used by a given scheme may stay null.
 */
struct ProcessContext
{
    const PageTable *table = nullptr;
    const MemoryMap *map = nullptr;             //!< RMM range table
    std::uint64_t anchor_distance = 0;          //!< anchor scheme
    const RegionPartition *partition = nullptr; //!< multi-region scheme
};

/** Where a translation was satisfied. */
enum class HitLevel : std::uint8_t
{
    L1,        //!< L1 4KB or 2MB TLB
    L2Regular, //!< regular (4KB/2MB) entry in the L2
    Coalesced, //!< anchor / cluster / range structure
    PageWalk,  //!< full page-table walk
};

/** Result of translating one virtual address. */
struct TranslationResult
{
    Ppn ppn = invalidPpn;
    Cycles cycles = 0;
    HitLevel level = HitLevel::PageWalk;
    PageSize size = PageSize::Base4K;
    /**
     * The guest-physical frame the walk resolved before the host
     * dimension (equals ppn when running natively). Only meaningful
     * when level == PageWalk: TLB hits cache the combined translation
     * and no longer know the guest frame.
     */
    Ppn guest_ppn = invalidPpn;
};

/** Aggregate per-MMU statistics. */
struct MmuStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_regular_hits = 0;
    std::uint64_t coalesced_hits = 0;
    std::uint64_t page_walks = 0;
    Cycles translation_cycles = 0;

    /** TLB misses as the paper counts them: full page walks. */
    std::uint64_t misses() const { return page_walks; }

    /** L2-level accesses (i.e. L1 misses). */
    std::uint64_t l2Accesses() const { return accesses - l1_hits; }

    /**
     * Accumulate another stat block (all counters sum). Associative and
     * commutative; the sharded runner's SimResult::merge builds on it.
     */
    MmuStats &operator+=(const MmuStats &other)
    {
        accesses += other.accesses;
        l1_hits += other.l1_hits;
        l2_regular_hits += other.l2_regular_hits;
        coalesced_hits += other.coalesced_hits;
        page_walks += other.page_walks;
        translation_cycles += other.translation_cycles;
        return *this;
    }
};

/**
 * Base MMU: owns the L1s, drives the scheme pipeline, accumulates stats.
 *
 * The page table is owned by the caller (the simulated OS); the MMU only
 * walks it.
 */
class Mmu
{
  public:
    Mmu(const MmuConfig &config, const PageTable &table, std::string name);
    virtual ~Mmu();

    Mmu(const Mmu &) = delete;
    Mmu &operator=(const Mmu &) = delete;

    /**
     * Translate one virtual address. Fatal if the address is unmapped
     * (the simulated workloads never touch unmapped memory).
     *
     * Inline so the common case — an L1 hit — never leaves the call
     * site: the inlined SetAssocTlb lookups and the stats update are
     * the entire fast path, and only L1 misses fall into the virtual
     * scheme pipeline (translateMiss -> translateL2). Checked builds
     * instead route every access through the out-of-line oracle path.
     */
    TranslationResult translate(VirtAddr va)
    {
        ++stats_.accesses;
        const Vpn vpn = vpnOf(va);
#ifdef ANCHORTLB_CHECKED
        const TranslationResult res = translateImpl(vpn);
        verifyTranslation(vpn, res);
        return res;
#else
        if (const TlbEntry *e = l1_4k_.lookup(EntryKind::Page4K, vpn)) {
            ++stats_.l1_hits;
            return {e->ppn, 0, HitLevel::L1, PageSize::Base4K};
        }
        if (const TlbEntry *e =
                l1_2m_.lookup(EntryKind::Page2M, vpn >> hugeShift)) {
            ++stats_.l1_hits;
            return {e->ppn + (vpn & (hugePages - 1)), 0, HitLevel::L1,
                    PageSize::Huge2M};
        }
        return translateMiss(vpn);
#endif
    }

    /** Invalidate all TLB state (context switch / shootdown). */
    virtual void flushAll();

    /**
     * Context switch: load @p ctx's page table (and scheme-specific
     * state) and flush the TLBs, as the x86 Linux kernel does
     * (paper Section 3.3). @p ctx.table must be non-null.
     */
    virtual void switchProcess(const ProcessContext &ctx);

    /**
     * Targeted shootdown for one page after the OS changed its
     * mapping: invalidates every TLB entry that could translate
     * @p vpn — including coalesced entries that merely *cover* it
     * (the paper's Section 3.3 notes the shootdown must invalidate
     * anchor entries as well as page entries). Schemes extend this for
     * their own structures.
     */
    virtual void invalidatePage(Vpn vpn);

    /**
     * Enter nested (virtualized) mode: the MMU's page table becomes
     * the *guest* table (GVA -> GPA) and walks continue through
     * @p host_table (GPA -> HPA) at 2D-walk cost; TLBs then cache
     * combined GVA -> HPA translations. @p host_map is the host
     * mapping's chunk view, used by coalescing schemes to clip
     * coverage to runs contiguous in *both* dimensions. Pass nullptrs
     * to return to native mode. Flushes all TLB state.
     */
    void setNested(const PageTable *host_table, const MemoryMap *host_map);

    /** True when translating through two dimensions. */
    bool nested() const { return host_table_ != nullptr; }

    /**
     * Whether this scheme's fill logic understands the host dimension
     * (clipping coalesced coverage to host-contiguous runs). Schemes
     * that don't must not be put in nested mode.
     */
    virtual bool supportsNested() const { return false; }

    const MmuStats &stats() const { return stats_; }

    /**
     * Zero the counters while keeping all TLB/walk-cache state warm.
     * The sharded runner calls this at the warmup/measurement boundary
     * so a shard's stats cover exactly its slice of the trace.
     */
    void resetStats() { stats_ = MmuStats{}; }

    const std::string &name() const { return name_; }
    const MmuConfig &config() const { return config_; }

    /** Current process's page table (the translation ground truth). */
    const PageTable &pageTable() const { return *table_; }

    /** Host (GPA -> HPA) table in nested mode; null when native. */
    const PageTable *hostPageTable() const { return host_table_; }

    /** L1 structures exposed for tests and occupancy reports. */
    const SetAssocTlb &l1Tlb4K() const { return l1_4k_; }
    const SetAssocTlb &l1Tlb2M() const { return l1_2m_; }

  protected:
    /**
     * Scheme pipeline, invoked after an L1 miss. Must set ppn, level and
     * cycles (excluding nothing: the returned cycles are charged as-is)
     * and fill whatever L2-level structures the scheme maintains. The L1
     * fill is handled by the base class.
     */
    virtual TranslationResult translateL2(Vpn vpn) = 0;

    /** Walk the page table; panics if @p vpn is unmapped. */
    TranslationResult walkPageTable(Vpn vpn, Cycles lookup_cycles);

    const MmuConfig config_;
    /** Current process's page table (swapped by switchProcess). */
    const PageTable *table_;
    /** Nested mode: host (GPA -> HPA) dimension; null when native. */
    const PageTable *host_table_ = nullptr;
    const MemoryMap *host_map_ = nullptr;

  private:
    std::string name_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    /** Optional page-walk cache (config_.pwc_enabled). */
    std::unique_ptr<WalkCache> pwc_;
    MmuStats stats_;

    /** Full pipeline including the L1 probes (checked-build path). */
    TranslationResult translateImpl(Vpn vpn);
    /** Post-L1-miss pipeline: scheme L2, stats buckets, L1 fill. */
    TranslationResult translateMiss(Vpn vpn);
    void fillL1(Vpn vpn, const TranslationResult &res);

    /**
     * Checked builds: re-walk the authoritative table(s) and panic if
     * the fast path produced a different frame (see common/check.hh).
     */
    void verifyTranslation(Vpn vpn, const TranslationResult &res) const;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_MMU_HH
