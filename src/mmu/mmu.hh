/**
 * @file
 * Abstract MMU: L1 TLBs plus a scheme-specific L2 pipeline.
 *
 * Every scheme shares the L1 organisation of paper Table 3 (64-entry
 * 4-way for 4KB, 32-entry 4-way for 2MB; hits fully hidden). On an L1
 * miss the scheme-specific translateL2() runs; subclasses implement the
 * baseline, cluster, RMM and anchor pipelines. Latency accounting:
 *
 *   L1 hit                 : 0 cycles
 *   L2 regular entry hit   : l2_hit_cycles (7)
 *   coalesced-structure hit: coalesced_hit_cycles (8)
 *   page walk              : lookup latency + walk_cycles (50)
 *
 * Subclasses return both the physical page and the attribution bucket so
 * the simulator can reproduce the paper's CPI breakdowns (Figs. 10-11)
 * and the L2 hit-type table (Table 5).
 */

#ifndef ANCHORTLB_MMU_MMU_HH
#define ANCHORTLB_MMU_MMU_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/simd.hh"
#include "common/types.hh"
#include "mmu/mmu_config.hh"
#include "tlb/set_assoc_tlb.hh"
#include "tlb/walk_cache.hh"
#include "trace/access.hh"

namespace atlb
{

class MemoryMap;
class PageTable;
struct RegionPartition;

/**
 * How many *probes* ahead the vector batch kernel prefetches the
 * translate path (prefetchTranslate: both L1 sets, the scheme's L2
 * sets, and the page-table leaf line). Counted in probes, not
 * accesses: L0-filtered accesses touch no TLB state, so distance in
 * access space would mostly aim at accesses that need no warming and
 * the lead time would collapse on filter-heavy streams. A probe costs
 * tens of nanoseconds (L2 lookup, often a walk), so 8 probes of lead
 * comfortably covers a DRAM miss; sweeping the constant through
 * bench_hotpath measured 4..16 equivalent within noise on the mcf
 * cells and a slow fall-off past 32 (prefetches start evicting lines
 * the current probe still wants).
 */
constexpr std::size_t kBatchPrefetchDistance = 8;

/**
 * Everything the hardware needs when the OS schedules a process: the
 * page-table root (CR3), and — for the coalescing schemes — the anchor
 * distance register, the range table, or the region table. Pointers
 * not used by a given scheme may stay null.
 */
struct ProcessContext
{
    const PageTable *table = nullptr;
    const MemoryMap *map = nullptr;             //!< RMM range table
    AnchorDist anchor_distance{};               //!< anchor scheme
    const RegionPartition *partition = nullptr; //!< multi-region scheme
    /** Address-space tag under SwitchPolicy::Asid (0 = untagged). */
    Asid asid{};
};

/**
 * What a context switch does to translation state (paper Section 3.3
 * vs the ASID-tagged alternative).
 *
 * Flush is the x86 Linux convention the paper assumes: every switch
 * flushes all TLBs, so per-process scheme registers (anchor distance,
 * region table) can change for free — but each quantum restarts cold.
 * Asid retains entries across switches by tagging them with the
 * process's ASID: warm restarts, but a remap in *any* resident address
 * space must now be shot down explicitly (see MmuConfig's shootdown
 * cost model) instead of dying in the next flush.
 */
enum class SwitchPolicy : std::uint8_t
{
    Flush, //!< flush-on-switch (the paper's x86 assumption)
    Asid,  //!< ASID-tagged retention across switches
};

/** Where a translation was satisfied. */
enum class HitLevel : std::uint8_t
{
    L1,        //!< L1 4KB or 2MB TLB
    L2Regular, //!< regular (4KB/2MB) entry in the L2
    Coalesced, //!< anchor / cluster / range structure
    PageWalk,  //!< full page-table walk
};

/** Result of translating one virtual address. */
struct TranslationResult
{
    Ppn ppn = invalidPpn;
    Cycles cycles = 0;
    HitLevel level = HitLevel::PageWalk;
    PageSize size = PageSize::Base4K;
    /**
     * The guest-physical frame the walk resolved before the host
     * dimension (equals ppn when running natively). Only meaningful
     * when level == PageWalk: TLB hits cache the combined translation
     * and no longer know the guest frame.
     */
    Ppn guest_ppn = invalidPpn;
};

/** Aggregate per-MMU statistics. */
struct MmuStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_regular_hits = 0;
    std::uint64_t coalesced_hits = 0;
    std::uint64_t page_walks = 0;
    Cycles translation_cycles = 0;
    /** Shootdown rounds charged (SwitchPolicy::Asid remaps). */
    std::uint64_t shootdowns = 0;
    /**
     * IPI cycles those rounds cost (MmuConfig's shootdown model).
     * Kept apart from translation_cycles: translation CPI stays
     * comparable across policies, and the shootdown tax is reported
     * (and charged into CPI) explicitly.
     */
    Cycles shootdown_cycles = 0;

    /** TLB misses as the paper counts them: full page walks. */
    std::uint64_t misses() const { return page_walks; }

    /** L2-level accesses (i.e. L1 misses). */
    std::uint64_t l2Accesses() const { return accesses - l1_hits; }

    /**
     * Accumulate another stat block (all counters sum). Associative and
     * commutative; the sharded runner's SimResult::merge builds on it.
     */
    MmuStats &operator+=(const MmuStats &other)
    {
        accesses += other.accesses;
        l1_hits += other.l1_hits;
        l2_regular_hits += other.l2_regular_hits;
        coalesced_hits += other.coalesced_hits;
        page_walks += other.page_walks;
        translation_cycles += other.translation_cycles;
        shootdowns += other.shootdowns;
        shootdown_cycles += other.shootdown_cycles;
        return *this;
    }
};

/**
 * Per-batch counters of the batch translation kernel. Separate from
 * MmuStats so a caller (the simulator, the benches) can observe one
 * replay loop's behaviour — notably the L0 filter rate — without
 * snapshot arithmetic on the cumulative stats. All fields accumulate
 * across translateBatch calls on the same struct.
 */
struct BatchStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    /**
     * Accesses short-circuited by the L0 same-page filter (a subset of
     * l1_hits). Zero in checked builds, which route every access
     * through the verifying per-access pipeline.
     */
    std::uint64_t l0_filtered = 0;

    BatchStats &operator+=(const BatchStats &other)
    {
        accesses += other.accesses;
        l1_hits += other.l1_hits;
        l0_filtered += other.l0_filtered;
        return *this;
    }
};

/**
 * Base MMU: owns the L1s, drives the scheme pipeline, accumulates stats.
 *
 * The page table is owned by the caller (the simulated OS); the MMU only
 * walks it.
 */
class Mmu
{
  public:
    Mmu(const MmuConfig &config, const PageTable &table, std::string name);
    virtual ~Mmu();

    Mmu(const Mmu &) = delete;
    Mmu &operator=(const Mmu &) = delete;

    /**
     * Translate one virtual address. Fatal if the address is unmapped
     * (the simulated workloads never touch unmapped memory).
     *
     * Inline so the common case — an L1 hit — never leaves the call
     * site: the inlined SetAssocTlb lookups and the stats update are
     * the entire fast path, and only L1 misses fall into the virtual
     * scheme pipeline (translateMiss -> translateL2). Checked builds
     * instead route every access through the out-of-line oracle path.
     */
    TranslationResult translate(VirtAddr va)
    {
        ++stats_.accesses;
        const Vpn vpn = vpnOf(va);
#ifdef ANCHORTLB_CHECKED
        const TranslationResult res = translateImpl(vpn);
        verifyTranslation(vpn, res);
        return res;
#else
        if (const TlbEntry *e = l1_4k_.lookup(EntryKind::Page4K,
                                              pageKey(vpn))) {
            ++stats_.l1_hits;
            return {e->ppn, 0, HitLevel::L1, PageSize::Base4K};
        }
        if (const TlbEntry *e =
                l1_2m_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
            ++stats_.l1_hits;
            return {e->ppn + hugeOffset(vpn), 0, HitLevel::L1,
                    PageSize::Huge2M};
        }
        return translateMiss(vpn);
#endif
    }

    /**
     * Translate @p n accesses in stream order, accumulating into the
     * MMU's stats and into @p batch. Counter-identical to calling
     * translate() on every element — the batch path exists purely to
     * make the replay loop fast: concrete schemes override it with a
     * devirtualized kernel (runBatchKernel) so the virtual dispatch
     * cost is paid once per batch instead of once per miss, the
     * accesses/l1_hits counters live in registers for the whole batch,
     * and consecutive accesses to the same page short-circuit through
     * the L0 filter. This default loops translate(); it is the
     * reference the equivalence suite (tests/sim/test_batch_kernel.cc)
     * and bench_hotpath compare the kernels against.
     */
    virtual void translateBatch(const MemAccess *accesses, std::size_t n,
                                BatchStats &batch);

    /** Invalidate all TLB state (context switch / shootdown). */
    virtual void flushAll();

    /**
     * Context switch: load @p ctx's page table and scheme-specific
     * state, then either flush the TLBs (SwitchPolicy::Flush, as the
     * x86 Linux kernel does, paper Section 3.3) or retag them with
     * @p ctx.asid (SwitchPolicy::Asid), leaving other address spaces'
     * entries resident. @p ctx.table must be non-null.
     */
    virtual void switchProcess(const ProcessContext &ctx);

    /**
     * Choose what switchProcess does to TLB state. Takes effect from
     * the next switch; the default is Flush, the paper's assumption.
     */
    void setSwitchPolicy(SwitchPolicy policy) { policy_ = policy; }
    SwitchPolicy switchPolicy() const { return policy_; }

    /** The address space currently tagged onto TLB operations. */
    Asid currentAsid() const { return asid_; }

    /**
     * Targeted shootdown for one page after the OS changed its
     * mapping: invalidates every TLB entry that could translate
     * @p vpn — including coalesced entries that merely *cover* it
     * (the paper's Section 3.3 notes the shootdown must invalidate
     * anchor entries as well as page entries). Schemes extend this for
     * their own structures. Acts on the current ASID.
     */
    virtual void invalidatePage(Vpn vpn);

    /**
     * ASID-qualified page shootdown: invalidate @p target's entries
     * covering @p vpn while some other process may be running.
     * Schemes whose coalesced keys depend on per-process registers
     * (the anchor distance, the region table) can only form exact
     * keys for the address space whose registers are loaded; for any
     * other target they conservatively fall back to invalidateAsid —
     * over-invalidation, never a stale survivor. Schemes with
     * register-free keys (baseline, cluster, CoLT, RMM) invalidate
     * exactly.
     */
    virtual void invalidatePage(Vpn vpn, Asid target);

    /**
     * Drop every translation tagged with @p target (address-space
     * teardown, or the conservative arm of a cross-ASID shootdown).
     * Entries of other ASIDs stay resident.
     */
    virtual void invalidateAsid(Asid target);

    /**
     * Account one TLB shootdown round against this MMU: @p responders
     * remote cores take the IPI for a @p pages -page invalidation
     * batch (see shootdownCost). Pure accounting — the caller issues
     * the invalidations themselves.
     */
    void chargeShootdown(unsigned responders, std::uint64_t pages)
    {
        ++stats_.shootdowns;
        stats_.shootdown_cycles +=
            shootdownCost(config_, responders, pages);
    }

    /**
     * Enter nested (virtualized) mode: the MMU's page table becomes
     * the *guest* table (GVA -> GPA) and walks continue through
     * @p host_table (GPA -> HPA) at 2D-walk cost; TLBs then cache
     * combined GVA -> HPA translations. @p host_map is the host
     * mapping's chunk view, used by coalescing schemes to clip
     * coverage to runs contiguous in *both* dimensions. Pass nullptrs
     * to return to native mode. Flushes all TLB state.
     */
    void setNested(const PageTable *host_table, const MemoryMap *host_map);

    /** True when translating through two dimensions. */
    bool nested() const { return host_table_ != nullptr; }

    /**
     * Whether this scheme's fill logic understands the host dimension
     * (clipping coalesced coverage to host-contiguous runs). Schemes
     * that don't must not be put in nested mode.
     */
    virtual bool supportsNested() const { return false; }

    const MmuStats &stats() const { return stats_; }

    /**
     * Zero the counters while keeping all TLB/walk-cache state warm.
     * The sharded runner calls this at the warmup/measurement boundary
     * so a shard's stats cover exactly its slice of the trace.
     */
    void resetStats() { stats_ = MmuStats{}; }

    const std::string &name() const { return name_; }
    const MmuConfig &config() const { return config_; }

    /** Current process's page table (the translation ground truth). */
    const PageTable &pageTable() const { return *table_; }

    /** Host (GPA -> HPA) table in nested mode; null when native. */
    const PageTable *hostPageTable() const { return host_table_; }

    /** L1 structures exposed for tests and occupancy reports. */
    const SetAssocTlb &l1Tlb4K() const { return l1_4k_; }
    const SetAssocTlb &l1Tlb2M() const { return l1_2m_; }

  protected:
    /**
     * Scheme pipeline, invoked after an L1 miss. Must set ppn, level and
     * cycles (excluding nothing: the returned cycles are charged as-is)
     * and fill whatever L2-level structures the scheme maintains. The L1
     * fill is handled by the base class.
     */
    virtual TranslationResult translateL2(Vpn vpn) = 0;

    /** Walk the page table; panics if @p vpn is unmapped. */
    TranslationResult walkPageTable(Vpn vpn, Cycles lookup_cycles);

    /**
     * Devirtualized batch loop shared by every scheme's translateBatch
     * override. @p l2 is a callable that runs the *statically
     * qualified* scheme pipeline (each override passes
     * `[this](Vpn v) { return SchemeName::translateL2(v); }`, which
     * the compiler resolves non-virtually), so the only virtual call
     * per batch is translateBatch itself.
     *
     * Counter-identity with the per-access translate() loop
     * (DESIGN.md "Batch kernel byte-identity"):
     *
     *  - The L0 same-page filter only short-circuits an access whose
     *    VPN equals the immediately preceding one in the same kernel
     *    run. That access is guaranteed an L1 hit under translate():
     *    either the previous access hit L1 (entry present, and
     *    lookup() just made it MRU) or it missed and fillL1 inserted
     *    it (insert() made it MRU). Re-looking it up would only re-mark
     *    the MRU entry MRU — an LRU no-op — so skipping the probe
     *    leaves every replacement decision, every fill, and every
     *    MmuStats counter identical. (TlbStats lookups/hits and the
     *    LRU tick value do diverge; nothing in SimResult or the golden
     *    output depends on them, and relative recency — the thing LRU
     *    replacement reads — is unchanged.)
     *  - Across kernel runs the filter is only trusted while the L1s
     *    have been neither probed nor mutated since the snapshot
     *    (SetAssocTlb::mutations() contract); flushAll and
     *    invalidatePage additionally drop it eagerly.
     *  - accesses/l1_hits accumulate in locals and flush to stats_
     *    once per batch; sums are associative, so totals match.
     *
     * Checked builds bypass all of this: the loop calls translate()
     * per access so verifyTranslation's oracle re-walk sees every
     * element (ISSUE 5 satellite fix).
     */
    template <class L2Fn>
    void
    runBatchKernel(const MemAccess *accesses, std::size_t n,
                   BatchStats &batch, L2Fn &&l2)
    {
#ifdef ANCHORTLB_CHECKED
        (void)l2; // oracle path verifies every access individually
        Mmu::translateBatch(accesses, n, batch);
#else
        if (batch_vec_ != nullptr) {
            (this->*batch_vec_)(accesses, n, batch);
            return;
        }
        std::uint64_t n_hits = 0;
        std::uint64_t n_filtered = 0;
        Vpn last_vpn = invalidVpn;
        bool have_last = l0FilterLoad(last_vpn);
        for (std::size_t i = 0; i < n; ++i) {
            const Vpn vpn = vpnOf(accesses[i].vaddr);
            if (have_last && vpn == last_vpn) {
                // Same page as the previous translation: guaranteed L1
                // hit, and re-probing the MRU entry is an LRU no-op.
                ++n_hits;
                ++n_filtered;
                continue;
            }
            last_vpn = vpn;
            have_last = true;
            if (l1_4k_.lookup(EntryKind::Page4K, pageKey(vpn)) !=
                nullptr) {
                ++n_hits;
                continue;
            }
            if (l1_2m_.lookup(EntryKind::Page2M, hugeKey(vpn)) !=
                nullptr) {
                ++n_hits;
                continue;
            }
            noteMiss(vpn, l2(vpn));
        }
        stats_.accesses += n;
        stats_.l1_hits += n_hits;
        batch.accesses += n;
        batch.l1_hits += n_hits;
        batch.l0_filtered += n_filtered;
        if (n > 0 && have_last)
            l0FilterStore(last_vpn);
#endif
    }

    /**
     * Vectorised batch loop, taken when the construction-time SIMD
     * level has a batch kernel (batch_vec_). The template is defined
     * in mmu/batch_kernel.hh and *instantiated only in the per-ISA
     * TUs* (mmu/batch_kernel_avx2.cc, compiled with -mavx2;
     * mmu/batch_kernel_neon.cc on aarch64), where the Isa policy's
     * probe and pre-pass bodies inline into the loop. Dispatch is paid
     * once per batch — a per-lookup kernel pointer was measured to
     * cost more than the 4-way scan it replaced (DESIGN.md §7.3).
     *
     * Counter-identical to the scalar kernel above — same MmuStats,
     * BatchStats and TlbStats, same victim choices:
     *
     *  - The pre-pass computes, for a whole chunk, every access's VPN
     *    and a same-page bitset eq (bit i set iff vpn[i] == vpn[i-1],
     *    carrying across chunk and batch boundaries exactly like
     *    last_vpn does in the scalar loop; when the carried filter is
     *    invalid, bit 0 of the first chunk is cleared — the scalar
     *    loop's `have_last` guard). These are precisely the accesses
     *    the scalar loop short-circuits, so counting them in bulk and
     *    probing only the zero bits — in ascending order, the stream
     *    order — issues the identical lookup()/noteMiss() sequence. No
     *    probe order changes, so no LRU or victim decision can.
     *  - The scheme pipeline runs through the translateL2 virtual:
     *    one virtual call per L1 miss, noise against the miss path it
     *    starts, and the same function the scalar kernel's
     *    devirtualized lambda resolves to.
     *  - The software prefetch (prefetchTranslate, issued
     *    kBatchPrefetchDistance *probes* ahead from the chunk's probe
     *    list) is semantics-free: prefetching reads nothing
     *    architecturally.
     */
    template <class Isa>
    void runBatchKernelVecT(const MemAccess *accesses, std::size_t n,
                            BatchStats &batch);

#if defined(__x86_64__)
    /** AVX2 instantiation; defined in mmu/batch_kernel_avx2.cc. */
    void batchKernelAvx2(const MemAccess *accesses, std::size_t n,
                         BatchStats &batch);
#endif
#if defined(__aarch64__)
    /** NEON instantiation; defined in mmu/batch_kernel_neon.cc. */
    void batchKernelNeon(const MemAccess *accesses, std::size_t n,
                         BatchStats &batch);
#endif

    /**
     * Warm the translate path for @p vpn, issued by the vector batch
     * kernel kBatchPrefetchDistance probes before the lookup. The base
     * prefetches both L1 sets and the page-table leaf line
     * (PageTable::prefetchWalk); schemes extend it with the L2 sets
     * their translateL2 probes first. Must stay semantics-free —
     * prefetch hints only, no architectural reads, no stats.
     */
    virtual void prefetchTranslate(Vpn vpn) const;

    /**
     * Retag TLB structures with @p asid on an ASID-policy switch. The
     * base retags both L1s and flushes the page-walk cache (PTE lines
     * are per-address-space and the PWC carries no tag — a flush is
     * the conservative model; it is also what invpcid-less hardware
     * does). Schemes override to retag their L2/coalesced structures
     * and must call the base.
     */
    virtual void applyAsid(Asid asid);

    const MmuConfig config_;
    /** Current process's page table (swapped by switchProcess). */
    const PageTable *table_;
    /** Nested mode: host (GPA -> HPA) dimension; null when native. */
    const PageTable *host_table_ = nullptr;
    const MemoryMap *host_map_ = nullptr;

  private:
    std::string name_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    SwitchPolicy policy_ = SwitchPolicy::Flush;
    Asid asid_{};
    /** Optional page-walk cache (config_.pwc_enabled). */
    std::unique_ptr<WalkCache> pwc_;
    MmuStats stats_;
    /** Member-function pointer type of the per-ISA batch kernels. */
    using BatchVecFn = void (Mmu::*)(const MemAccess *, std::size_t,
                                     BatchStats &);
    /**
     * Batch kernel for the construction-time SIMD level; null selects
     * the scalar batch loop (the reference path). The only dispatch
     * indirection on the vector path, paid once per batch.
     */
    BatchVecFn batch_vec_ = nullptr;

    /** Full pipeline including the L1 probes (checked-build path). */
    TranslationResult translateImpl(Vpn vpn);
    /** Post-L1-miss pipeline: scheme L2, stats buckets, L1 fill. */
    TranslationResult translateMiss(Vpn vpn);
    /**
     * Account one L1 miss: bump the per-level bucket, charge the
     * cycles, fill L1. Shared by translateMiss and runBatchKernel so
     * the two paths cannot drift.
     */
    void noteMiss(Vpn vpn, const TranslationResult &res);
    void fillL1(Vpn vpn, const TranslationResult &res);

    /**
     * L0 same-page filter carry-over between batch-kernel runs. The
     * cached VPN is only trusted while *both* L1s report the same
     * lookup and mutation counts as when it was stored — i.e. nobody
     * probed or changed the TLBs in between (an interleaved per-access
     * translate() advances lookups; flush/invalidate/insert advance
     * mutations). flushAll/invalidatePage also clear it eagerly, so
     * correctness never rests on the counters alone.
     */
    Vpn l0_vpn_ = invalidVpn;
    bool l0_valid_ = false;
    std::uint64_t l0_lookups_4k_ = 0;
    std::uint64_t l0_lookups_2m_ = 0;
    std::uint64_t l0_mutations_4k_ = 0;
    std::uint64_t l0_mutations_2m_ = 0;

    /** @return true and set @p vpn if the carried filter is valid. */
    bool l0FilterLoad(Vpn &vpn) const
    {
        if (!l0_valid_ || l1_4k_.stats().lookups != l0_lookups_4k_ ||
            l1_2m_.stats().lookups != l0_lookups_2m_ ||
            l1_4k_.mutations() != l0_mutations_4k_ ||
            l1_2m_.mutations() != l0_mutations_2m_)
            return false;
        vpn = l0_vpn_;
        return true;
    }

    /** Snapshot @p vpn as the hot page at the end of a kernel run. */
    void l0FilterStore(Vpn vpn)
    {
        l0_vpn_ = vpn;
        l0_valid_ = true;
        l0_lookups_4k_ = l1_4k_.stats().lookups;
        l0_lookups_2m_ = l1_2m_.stats().lookups;
        l0_mutations_4k_ = l1_4k_.mutations();
        l0_mutations_2m_ = l1_2m_.mutations();
    }

    void l0FilterClear() { l0_valid_ = false; }

    /**
     * Checked builds: re-walk the authoritative table(s) and panic if
     * the fast path produced a different frame (see common/check.hh).
     */
    void verifyTranslation(Vpn vpn, const TranslationResult &res) const;
};

} // namespace atlb

#endif // ANCHORTLB_MMU_MMU_HH
