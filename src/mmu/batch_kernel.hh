/**
 * @file
 * Definition of Mmu::runBatchKernelVecT, the vectorised batch loop.
 *
 * Only the per-ISA kernel TUs include this header
 * (batch_kernel_avx2.cc — the TU compiled with -mavx2 — and
 * batch_kernel_neon.cc on aarch64); everything else sees just the
 * declaration in mmu.hh. Keeping the definition out of mmu.hh is the
 * point of the design: the Isa policy's probe and pre-pass bodies are
 * ISA intrinsics that may only be *compiled* in a TU built for that
 * ISA, and inlining them into the loop is what makes the vector
 * kernel pay (per-lookup dispatch through a function pointer was
 * measured slower than the scalar scan it replaced — DESIGN.md §7.3).
 *
 * The Isa policy supplies two statics, both matching the dispatch
 * kernel contracts in common/simd.hh (the differential tests in
 * tests/common/test_simd.cc pin those against the scalar reference):
 *
 *   static int  find(const std::uint64_t *words, unsigned count,
 *                    std::uint64_t want);            // SimdFindU64Fn
 *   static void vpnEq(const std::uint8_t *accesses, std::size_t count,
 *                     unsigned shift, std::uint64_t prev,
 *                     std::uint64_t *vpns, std::uint64_t *eqbits);
 *                                                    // SimdVpnEqFn
 */

#ifndef ANCHORTLB_MMU_BATCH_KERNEL_HH
#define ANCHORTLB_MMU_BATCH_KERNEL_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/simd.hh"
#include "mmu/mmu.hh"

namespace atlb
{

/**
 * See the contract on the declaration in mmu.hh: counter-identical to
 * the scalar runBatchKernel, probes in stream order, prefetches
 * kBatchPrefetchDistance probes ahead.
 */
template <class Isa>
void
Mmu::runBatchKernelVecT(const MemAccess *accesses, std::size_t n,
                        BatchStats &batch)
{
    // The pre-pass kernel reads the access array as raw 16-byte
    // records with the address word first.
    static_assert(sizeof(MemAccess) == 16 &&
                  offsetof(MemAccess, vaddr) == 0);
    std::uint64_t n_hits = 0;
    std::uint64_t n_filtered = 0;
    Vpn last_vpn = invalidVpn;
    bool have_last = l0FilterLoad(last_vpn);
    constexpr std::size_t kChunk = 512;
    alignas(simdAlignBytes) std::uint64_t vpns[kChunk];
    std::uint64_t eqbits[kChunk / 64];
    std::uint32_t probes[kChunk];
    for (std::size_t done = 0; done < n; done += kChunk) {
        const std::size_t m = std::min(kChunk, n - done);
        Isa::vpnEq(
            reinterpret_cast<const std::uint8_t *>(accesses + done), m,
            pageShift, last_vpn.raw(), vpns, eqbits);
        if (!have_last)
            eqbits[0] &= ~std::uint64_t{1};

        // Turn the eq bitset into the chunk's probe list: the indices
        // whose bit is clear, ascending — exactly the accesses the
        // scalar loop would probe, in the order it would probe them.
        std::size_t np = 0;
        for (std::size_t w = 0; w * 64 < m; ++w) {
            const std::size_t first = w * 64;
            const unsigned live = static_cast<unsigned>(
                std::min<std::size_t>(64, m - first));
            const std::uint64_t live_mask =
                live == 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << live) - 1;
            std::uint64_t todo = ~eqbits[w] & live_mask;
            while (todo != 0) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(todo));
                todo &= todo - 1;
                probes[np++] = static_cast<std::uint32_t>(first + b);
            }
        }
        const std::uint64_t filtered = m - np;
        n_hits += filtered;
        n_filtered += filtered;

        // Probe loop with the translate path warmed
        // kBatchPrefetchDistance probes ahead. The warm-up loop covers
        // the chunk's first probes, whose +distance partner the main
        // loop never reaches.
        const std::size_t warm =
            std::min(np, kBatchPrefetchDistance);
        for (std::size_t j = 0; j < warm; ++j)
            prefetchTranslate(Vpn{vpns[probes[j]]});
        for (std::size_t j = 0; j < np; ++j) {
            if (j + kBatchPrefetchDistance < np)
                prefetchTranslate(
                    Vpn{vpns[probes[j + kBatchPrefetchDistance]]});
            const Vpn vpn{vpns[probes[j]]};
            if (l1_4k_.lookupWith(EntryKind::Page4K, pageKey(vpn),
                                  Isa::find) != nullptr) {
                ++n_hits;
                continue;
            }
            if (l1_2m_.lookupWith(EntryKind::Page2M, hugeKey(vpn),
                                  Isa::find) != nullptr) {
                ++n_hits;
                continue;
            }
            noteMiss(vpn, translateL2(vpn));
        }
        last_vpn = Vpn{vpns[m - 1]};
        have_last = true;
    }
    stats_.accesses += n;
    stats_.l1_hits += n_hits;
    batch.accesses += n;
    batch.l1_hits += n_hits;
    batch.l0_filtered += n_filtered;
    if (n > 0 && have_last)
        l0FilterStore(last_vpn);
}

} // namespace atlb

#endif // ANCHORTLB_MMU_BATCH_KERNEL_HH
