/**
 * @file
 * NEON instantiation of the vectorised batch kernel.
 *
 * aarch64 ships NEON in the baseline ISA, so this TU needs no special
 * flags — only the compile-time guard. The Isa policy wraps the shared
 * inline kernel bodies from common/simd_kernels.hh, inlined into the
 * batch loop (see batch_kernel_avx2.cc for the x86 twin and the
 * rationale).
 */

#if defined(__aarch64__)

#include "common/simd_kernels.hh"
#include "mmu/batch_kernel.hh"

namespace atlb
{

namespace
{

struct NeonIsa
{
    static int
    find(const std::uint64_t *words, unsigned count, std::uint64_t want)
    {
        return simd_neon::findU64Inline(words, count, want);
    }

    static void
    vpnEq(const std::uint8_t *accesses, std::size_t count,
          unsigned shift, std::uint64_t prev, std::uint64_t *vpns,
          std::uint64_t *eqbits)
    {
        simd_neon::vpnEqInline(accesses, count, shift, prev, vpns,
                               eqbits);
    }
};

} // namespace

void
Mmu::batchKernelNeon(const MemAccess *accesses, std::size_t n,
                     BatchStats &batch)
{
    runBatchKernelVecT<NeonIsa>(accesses, n, batch);
}

} // namespace atlb

#endif // defined(__aarch64__)
