#include "mmu.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "os/page_table.hh"

namespace atlb
{

Mmu::Mmu(const MmuConfig &config, const PageTable &table, std::string name)
    : config_(config), table_(&table), name_(std::move(name)),
      l1_4k_(config.l1_4k_entries, config.l1_4k_ways, name_ + ".l1-4k"),
      l1_2m_(config.l1_2m_entries, config.l1_2m_ways, name_ + ".l1-2m")
{
    if (config_.pwc_enabled) {
        pwc_ = std::make_unique<WalkCache>(config_.pwc_pml4e_entries,
                                           config_.pwc_pdpte_entries,
                                           config_.pwc_pde_entries);
    }
    // The SIMD level is captured here, once: benches/tests that flip
    // levels in-process (forceSimdLevel) construct fresh MMUs.
    switch (simdLevel()) {
      case SimdLevel::Scalar:
        break;
#if defined(__x86_64__)
      case SimdLevel::Avx2:
        batch_vec_ = &Mmu::batchKernelAvx2;
        break;
#endif
#if defined(__aarch64__)
      case SimdLevel::Neon:
        batch_vec_ = &Mmu::batchKernelNeon;
        break;
#endif
      default:
        // A level this build cannot run; simdLevel() already rejects
        // the combination, so the scalar kernel is a safe backstop.
        break;
    }
}

void
Mmu::prefetchTranslate(Vpn vpn) const
{
    // Deliberately NOT the L1 sets: the L1 arrays are a few hundred
    // bytes and effectively cache-resident, so hinting them wastes the
    // prefetch-line budget that bounds how far ahead the kernel can
    // run without evicting its own hints. Only the walk's leaf line is
    // reliably cold here.
    table_->prefetchWalk(vpn);
}

Mmu::~Mmu() = default;

TranslationResult
Mmu::translateImpl(Vpn vpn)
{
    // L1 lookups (parallel with cache access: zero added latency).
    if (const TlbEntry *e = l1_4k_.lookup(EntryKind::Page4K,
                                          pageKey(vpn))) {
        ++stats_.l1_hits;
        return {e->ppn, 0, HitLevel::L1, PageSize::Base4K};
    }
    if (const TlbEntry *e =
            l1_2m_.lookup(EntryKind::Page2M, hugeKey(vpn))) {
        ++stats_.l1_hits;
        return {e->ppn + hugeOffset(vpn), 0, HitLevel::L1,
                PageSize::Huge2M};
    }
    return translateMiss(vpn);
}

TranslationResult
Mmu::translateMiss(Vpn vpn)
{
    const TranslationResult res = translateL2(vpn);
    noteMiss(vpn, res);
    return res;
}

void
Mmu::noteMiss(Vpn vpn, const TranslationResult &res)
{
    switch (res.level) {
      case HitLevel::L2Regular:
        ++stats_.l2_regular_hits;
        break;
      case HitLevel::Coalesced:
        ++stats_.coalesced_hits;
        break;
      case HitLevel::PageWalk:
        ++stats_.page_walks;
        break;
      case HitLevel::L1:
        ATLB_PANIC("translateL2 reported an L1 hit");
    }
    stats_.translation_cycles += res.cycles;
    fillL1(vpn, res);
}

void
Mmu::translateBatch(const MemAccess *accesses, std::size_t n,
                    BatchStats &batch)
{
    // Reference implementation (and the checked-build path, so the
    // verifyTranslation oracle sees every access): per-access
    // translate(), BatchStats recovered from the MmuStats delta.
    const std::uint64_t accesses_before = stats_.accesses;
    const std::uint64_t hits_before = stats_.l1_hits;
    for (std::size_t i = 0; i < n; ++i)
        translate(accesses[i].vaddr);
    batch.accesses += stats_.accesses - accesses_before;
    batch.l1_hits += stats_.l1_hits - hits_before;
}

void
Mmu::verifyTranslation(Vpn vpn, const TranslationResult &res) const
{
    // The guest dimension first: what does the authoritative table say?
    const WalkResult walk = table_->walk(vpn);
    ANCHOR_CHECK(walk.present,
                 "{}: fast path translated unmapped vpn {}", name_, vpn);
    Ppn expected = walk.ppn;
    if (host_table_ != nullptr) {
        const WalkResult host = host_table_->walk(hostVpnOf(walk.ppn));
        ANCHOR_CHECK(host.present, "{}: guest frame {} unmapped in host",
                     name_, walk.ppn);
        expected = host.ppn;
    }
    // guest_ppn is defined only on walk results: a TLB hit caches the
    // combined translation, the hardware no longer knows the guest
    // frame.
    if (res.level == HitLevel::PageWalk) {
        ANCHOR_CHECK_EQ(res.guest_ppn, walk.ppn,
                        "{}: wrong guest frame for vpn {}", name_, vpn);
    }
    ANCHOR_CHECK_EQ(res.ppn, expected, "{}: wrong frame for vpn {}",
                    name_, vpn);
}

void
Mmu::fillL1(Vpn vpn, const TranslationResult &res)
{
    if (res.size == PageSize::Huge2M) {
        TlbEntry e;
        e.kind = EntryKind::Page2M;
        e.key = hugeKey(vpn);
        e.ppn = res.ppn - hugeOffset(vpn);
        e.valid = true;
        l1_2m_.insert(e);
    } else {
        TlbEntry e;
        e.kind = EntryKind::Page4K;
        e.key = pageKey(vpn);
        e.ppn = res.ppn;
        e.valid = true;
        l1_4k_.insert(e);
    }
}

TranslationResult
Mmu::walkPageTable(Vpn vpn, Cycles lookup_cycles)
{
    const WalkResult walk = table_->walk(vpn);
    if (!walk.present)
        ATLB_FATAL("{}: access to unmapped vpn {}", name_, vpn);
    TranslationResult res;
    res.ppn = walk.ppn;
    res.guest_ppn = walk.ppn;
    res.size = walk.size;
    res.level = HitLevel::PageWalk;

    if (host_table_) {
        // Nested dimension: the guest frame is a guest-physical address
        // that the host table maps onto machine memory.
        const WalkResult host = host_table_->walk(hostVpnOf(walk.ppn));
        if (!host.present) {
            ATLB_FATAL("{}: guest frame {} not mapped by the host",
                       name_, walk.ppn);
        }
        res.ppn = host.ppn;
        // The combined TLB entry can only cover the smaller leaf (the
        // host guarantees contiguity only within its own page).
        if (pagesCovered(host.size) < pagesCovered(res.size))
            res.size = host.size;
        // 2D walk: every guest level fetch needs a host walk for its
        // node's GPA, plus the final data GPA: (g+1)(h+1)-1 refs.
        const unsigned refs =
            (walk.levels + 1) * (host.levels + 1) - 1;
        res.cycles = lookup_cycles + refs * config_.nested_ref_cycles;
        return res;
    }

    if (pwc_) {
        const unsigned refs = pwc_->walkRefs(vpn, walk.levels);
        res.cycles = lookup_cycles + refs * config_.pwc_mem_ref_cycles;
    } else {
        res.cycles = lookup_cycles + config_.walk_cycles;
    }
    return res;
}

void
Mmu::flushAll()
{
    // The mutation counters would catch this too, but drop the filter
    // eagerly so correctness never rests on the snapshot comparison.
    l0FilterClear();
    l1_4k_.flush();
    l1_2m_.flush();
    if (pwc_)
        pwc_->flush();
}

void
Mmu::switchProcess(const ProcessContext &ctx)
{
    ATLB_ASSERT(ctx.table, "switchProcess without a page table");
    table_ = ctx.table;
    if (policy_ == SwitchPolicy::Flush) {
        flushAll();
        return;
    }
    ATLB_ASSERT(ctx.asid.raw() != 0,
                "ASID-policy switch needs a non-zero ASID");
    asid_ = ctx.asid;
    // The hot entry the L0 filter cached belongs to the old address
    // space (the TLB mutation bump would catch it too; eager is safer).
    l0FilterClear();
    applyAsid(ctx.asid);
}

void
Mmu::applyAsid(Asid asid)
{
    l1_4k_.setAsid(asid);
    l1_2m_.setAsid(asid);
    if (pwc_)
        pwc_->flush();
}

void
Mmu::invalidatePage(Vpn vpn)
{
    l0FilterClear();
    l1_4k_.invalidate(EntryKind::Page4K, pageKey(vpn));
    l1_2m_.invalidate(EntryKind::Page2M, hugeKey(vpn));
}

void
Mmu::invalidatePage(Vpn vpn, Asid target)
{
    l0FilterClear();
    l1_4k_.invalidate(EntryKind::Page4K, pageKey(vpn), target);
    l1_2m_.invalidate(EntryKind::Page2M, hugeKey(vpn), target);
}

void
Mmu::invalidateAsid(Asid target)
{
    l0FilterClear();
    l1_4k_.invalidateAsid(target);
    l1_2m_.invalidateAsid(target);
    if (pwc_)
        pwc_->flush();
}

void
Mmu::setNested(const PageTable *host_table, const MemoryMap *host_map)
{
    ATLB_ASSERT((host_table == nullptr) == (host_map == nullptr),
                "nested mode needs both host table and host map");
    ATLB_ASSERT(!host_table || supportsNested(),
                "{} does not support nested translation", name_);
    host_table_ = host_table;
    host_map_ = host_map;
    flushAll();
}

} // namespace atlb
