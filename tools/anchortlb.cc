/**
 * @file
 * anchortlb — command-line driver for the simulator.
 *
 * Subcommands:
 *   list                        catalog workloads, scenarios, schemes
 *   run                         one (workload, scenario, scheme) cell
 *   sweep-distance              anchor misses across every distance
 *   gen-trace                   write a synthetic trace to a file
 *   replay                      drive a trace file through a scheme
 *   trace import|convert|info|replay
 *                               text-trace ingestion, codec conversion,
 *                               metadata and grid-path replay
 *   serve / submit / query      sweep service over a unix socket with a
 *                               content-addressed persistent result store
 *   store info|gc               result-store inspection and compaction
 *

 * Run `anchortlb help` for the full usage text. Output is an ASCII
 * table by default; pass --csv for machine-readable output.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "ingest/text_importer.hh"
#include "ingest/trace_open.hh"
#include "ingest/trace_v2.hh"
#include "ingest/workload_profile.hh"
#include "mmu/anchor_mmu.hh"
#include "os/mapping_io.hh"
#include "trace/profiler.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "serve/client.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/multiprocess.hh"
#include "sim/sharded_runner.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

/** Minimal --key=value / --flag parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positional_.push_back(std::move(arg));
                continue;
            }
            arg = arg.substr(2);
            const auto eq = arg.find('=');
            if (eq == std::string::npos)
                named_[arg] = "true";
            else
                named_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = named_.find(key);
        return it == named_.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        const auto it = named_.find(key);
        return it == named_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = named_.find(key);
        return it == named_.end()
                   ? fallback
                   : std::strtod(it->second.c_str(), nullptr);
    }

    bool has(const std::string &key) const { return named_.count(key); }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> named_;
    std::vector<std::string> positional_;
};

Scheme
schemeFromName(const std::string &name)
{
    for (const Scheme s : allSchemes)
        if (name == schemeName(s))
            return s;
    // Friendlier aliases.
    if (name == "base") return Scheme::Base;
    if (name == "thp") return Scheme::Thp;
    if (name == "cluster") return Scheme::Cluster;
    if (name == "cluster-2mb") return Scheme::Cluster2MB;
    if (name == "rmm") return Scheme::Rmm;
    if (name == "anchor" || name == "dynamic") return Scheme::Anchor;
    if (name == "ideal") return Scheme::AnchorIdeal;
    ATLB_FATAL("unknown scheme '{}' (try: base thp cluster cluster-2mb "
               "rmm anchor ideal)", name);
}

void
emit(const Table &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.printAscii(std::cout);
}

SimOptions
optionsFrom(const Args &args)
{
    SimOptions opts = SimOptions::fromEnv();
    opts.accesses = args.getU64("accesses", opts.accesses);
    opts.seed = args.getU64("seed", opts.seed);
    opts.footprint_scale = args.getDouble("scale", opts.footprint_scale);
    opts.shards = static_cast<unsigned>(args.getU64("shards", opts.shards));
    if (opts.shards < 1)
        ATLB_FATAL("--shards must be >= 1");
    opts.shard_warmup = args.getU64("warmup", opts.shard_warmup);
    return opts;
}

int
cmdList(const Args &args)
{
    const bool csv = args.has("csv");
    Table workloads("workloads",
                    {"name", "footprint MB", "mem/instr",
                     "demand run pages", "eager run pages"});
    for (const WorkloadSpec &w : workloadCatalog()) {
        workloads.beginRow();
        workloads.cell(w.name);
        workloads.cell(w.footprint_bytes >> 20);
        workloads.cell(w.mem_per_instr, 2);
        workloads.cell(w.demand_run_pages);
        workloads.cell(w.eager_run_pages);
    }
    emit(workloads, csv);

    Table scenarios("scenarios", {"name", "description"});
    const char *descriptions[] = {
        "demand paging, THP on, fragmented pool",
        "eager paging, THP on",
        "synthetic chunks uniform 1-16 pages",
        "synthetic chunks uniform 1-512 pages",
        "synthetic chunks uniform 512-65536 pages",
        "one maximal chunk",
    };
    int i = 0;
    for (const ScenarioKind k : allScenarios) {
        scenarios.beginRow();
        scenarios.cell(std::string(scenarioName(k)));
        scenarios.cell(std::string(descriptions[i++]));
    }
    emit(scenarios, csv);

    Table schemes("schemes", {"name"});
    for (const Scheme s : allSchemes) {
        schemes.beginRow();
        schemes.cell(std::string(schemeName(s)));
    }
    emit(schemes, csv);
    return 0;
}

int
cmdRun(const Args &args)
{
    const std::string workload = args.get("workload", "canneal");
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const bool csv = args.has("csv");

    ExperimentContext ctx(optionsFrom(args));
    const SimResult base = ctx.run(workload, scenario, Scheme::Base);

    std::vector<Scheme> schemes;
    if (args.has("scheme")) {
        schemes.push_back(schemeFromName(args.get("scheme", "")));
    } else {
        schemes.assign(std::begin(allSchemes), std::end(allSchemes));
    }

    Table table(workload + " / " + scenarioName(scenario),
                {"scheme", "walks", "relative%", "L1 hit%", "L2 reg hit%",
                 "coalesced%", "CPI", "anchor dist"});
    for (const Scheme s : schemes) {
        std::optional<std::uint64_t> dist;
        if (args.has("distance") && s == Scheme::Anchor)
            dist = args.getU64("distance", 0);
        const SimResult r = ctx.run(workload, scenario, s, dist);
        table.beginRow();
        table.cell(r.scheme);
        table.cell(r.misses());
        table.cellPercent(relativeMisses(r.misses(), base.misses()));
        table.cellPercent(
            r.stats.accesses
                ? static_cast<double>(r.stats.l1_hits) /
                      static_cast<double>(r.stats.accesses)
                : 0.0);
        table.cellPercent(r.regularHitFraction());
        table.cellPercent(r.coalescedHitFraction());
        table.cell(r.translationCpi(), 4);
        table.cell(r.anchor_distance
                       ? std::to_string(r.anchor_distance)
                       : std::string("-"));
    }
    emit(table, csv);
    return 0;
}

int
cmdSweepDistance(const Args &args)
{
    const std::string workload = args.get("workload", "canneal");
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const bool csv = args.has("csv");

    ExperimentContext ctx(optionsFrom(args));
    const std::uint64_t base =
        ctx.run(workload, scenario, Scheme::Base).misses();
    const std::uint64_t dynamic_d =
        ctx.dynamicDistance(workload, scenario);

    Table table("anchor distance sweep: " + workload + " / " +
                    scenarioName(scenario),
                {"distance", "walks", "relative%", "dynamic pick"});
    for (const std::uint64_t d : candidateDistances()) {
        const SimResult r =
            ctx.run(workload, scenario, Scheme::Anchor, d);
        table.beginRow();
        table.cell(d);
        table.cell(r.misses());
        table.cellPercent(relativeMisses(r.misses(), base));
        table.cell(std::string(d == dynamic_d ? "<==" : ""));
    }
    emit(table, csv);
    return 0;
}

int
cmdGenTrace(const Args &args)
{
    const std::string workload = args.get("workload", "canneal");
    const std::string path = args.get("out", workload + ".trace");
    const SimOptions opts = optionsFrom(args);

    WorkloadSpec spec = findWorkload(workload);
    spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprint_bytes) * opts.footprint_scale);
    PatternTrace source(spec, vaOf(Vpn{0x7f0000000ULL}), opts.accesses,
                        opts.seed);
    TraceWriter writer(path);
    MemAccess a;
    while (source.next(a))
        writer.append(a);
    writer.close();
    std::cout << "wrote " << writer.written() << " accesses to " << path
              << "\n";
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (args.positional().empty())
        ATLB_FATAL("replay needs a trace file argument");
    const std::string path = args.positional()[0];
    const std::string workload = args.get("workload", "canneal");
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const Scheme scheme = schemeFromName(args.get("scheme", "anchor"));
    const SimOptions opts = optionsFrom(args);

    WorkloadSpec spec = findWorkload(workload);
    spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprint_bytes) * opts.footprint_scale);
    ScenarioParams params;
    params.footprint_pages = spec.footprintPages();
    params.seed = opts.seed;
    params.demand_run_pages = spec.demand_run_pages;
    params.eager_run_pages = spec.eager_run_pages;
    params.demand_churn = spec.demand_churn;
    params.map_tail_run_pages = spec.map_tail_run_pages;
    params.map_tail_fraction = spec.map_tail_fraction;
    const MemoryMap map = buildScenario(scenario, params);

    PageTable table;
    std::unique_ptr<Mmu> mmu;
    const MmuConfig &cfg = opts.mmu;
    switch (scheme) {
      case Scheme::Base:
        table = buildPageTable(map, false);
        mmu = std::make_unique<BaselineMmu>(cfg, table, "base");
        break;
      case Scheme::Thp:
        table = buildPageTable(map, true);
        mmu = std::make_unique<BaselineMmu>(cfg, table, "thp");
        break;
      case Scheme::Cluster:
        table = buildPageTable(map, false);
        mmu = std::make_unique<ClusterMmu>(cfg, table, false);
        break;
      case Scheme::Cluster2MB:
        table = buildPageTable(map, true);
        mmu = std::make_unique<ClusterMmu>(cfg, table, true);
        break;
      case Scheme::Rmm:
        table = buildPageTable(map, true);
        mmu = std::make_unique<RmmMmu>(cfg, table, map);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal: {
        const std::uint64_t d =
            args.has("distance")
                ? args.getU64("distance", 8)
                : selectAnchorDistance(map.contiguityHistogram())
                      .distance;
        const AnchorDist dist = AnchorDist::fromPages(d);
        table = buildAnchorPageTable(map, dist);
        mmu = std::make_unique<AnchorMmu>(cfg, table, dist);
        break;
      }
    }

    TraceFileSource trace(path);
    const SimResult r = runSimulation(*mmu, trace, spec.mem_per_instr);
    Table out("replay of " + path, {"metric", "value"});
    out.beginRow();
    out.cell(std::string("accesses"));
    out.cell(r.stats.accesses);
    out.beginRow();
    out.cell(std::string("page walks"));
    out.cell(r.misses());
    out.beginRow();
    out.cell(std::string("translation CPI"));
    out.cell(r.translationCpi(), 4);
    emit(out, args.has("csv"));
    return 0;
}

int
cmdProfile(const Args &args)
{
    const bool csv = args.has("csv");
    const SimOptions opts = optionsFrom(args);
    std::unique_ptr<TraceSource> source;
    std::string what;
    if (!args.positional().empty()) {
        what = args.positional()[0];
        source = openTraceFile(what);
    } else {
        const std::string workload = args.get("workload", "canneal");
        WorkloadSpec spec = findWorkload(workload);
        spec.footprint_bytes = static_cast<std::uint64_t>(
            static_cast<double>(spec.footprint_bytes) *
            opts.footprint_scale);
        source = std::make_unique<PatternTrace>(
            spec, vaOf(Vpn{0x7f0000000ULL}), opts.accesses, opts.seed);
        what = workload + " (synthetic)";
    }
    if (args.has("json")) {
        WorkloadProfiler profiler;
        profiler.consume(*source);
        writeWorkloadProfileJson(std::cout, profiler.profile());
        return 0;
    }
    TraceProfiler profiler;
    profiler.consume(*source);
    const TraceProfile p = profiler.profile();

    Table table("page-level profile of " + what, {"metric", "value"});
    const auto row = [&table](const std::string &k,
                              const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };
    row("accesses", std::to_string(p.accesses));
    row("writes", std::to_string(p.writes));
    row("unique 4KB pages", std::to_string(p.unique_pages));
    row("same-page fraction",
        std::to_string(p.same_page_fraction));
    row("sequential fraction",
        std::to_string(p.sequential_fraction));
    row("cold accesses", std::to_string(p.cold_accesses));
    row("hot set for 50% of reuses",
        std::to_string(p.hotSetPages(0.5)) + " pages");
    row("hot set for 90% of reuses",
        std::to_string(p.hotSetPages(0.9)) + " pages");
    row("reuses within L2 reach (1K pages)",
        std::to_string(p.hitFractionAtReach(1024)));
    emit(table, csv);
    return 0;
}

int
cmdShardCheck(const Args &args)
{
    const std::string workload = args.get("workload", "canneal");
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const Scheme scheme = schemeFromName(args.get("scheme", "anchor"));
    SimOptions opts = optionsFrom(args);

    const WorkloadSpec spec = scaledWorkloadSpec(opts, workload);
    const MemoryMap map =
        buildScenario(scenario, scenarioParamsFor(opts, spec));
    std::uint64_t distance = 0;
    PageTable table;
    switch (scheme) {
      case Scheme::Base:
      case Scheme::Cluster:
        table = buildPageTable(map, false);
        break;
      case Scheme::Thp:
      case Scheme::Cluster2MB:
      case Scheme::Rmm:
        table = buildPageTable(map, true);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        distance = args.has("distance")
                       ? args.getU64("distance", 8)
                       : selectAnchorDistance(map.contiguityHistogram())
                             .distance;
        table = buildAnchorPageTable(map, AnchorDist::fromPages(distance));
        break;
    }

    Table out("shard accuracy: " + workload + " / " +
                  scenarioName(scenario) + " / " + schemeName(scheme),
              {"shards", "walks", "walk delta", "miss-rate delta",
               "relative err", "within eps"});
    const std::vector<unsigned> shard_counts =
        args.has("shards")
            ? std::vector<unsigned>{static_cast<unsigned>(
                  args.getU64("shards", 2))}
            : std::vector<unsigned>{2, 4, 8};
    SimOptions serial_opts = opts;
    serial_opts.shards = 1;
    const SimResult serial = runSchemeCell(serial_opts, spec, scenario,
                                           map, table, scheme, distance);
    out.beginRow();
    out.cell(std::string("1 (serial)"));
    out.cell(serial.misses());
    out.cell(std::uint64_t{0});
    out.cell(0.0, 6);
    out.cell(0.0, 6);
    out.cell(std::string("yes"));
    for (const unsigned k : shard_counts) {
        SimOptions sharded_opts = opts;
        sharded_opts.shards = k;
        ShardAccuracy acc;
        acc.serial = serial;
        acc.sharded = runShardedCell(sharded_opts, spec, scenario, map,
                                     table, scheme, distance)
                          .merged;
        acc.shard_count = k;
        out.beginRow();
        out.cell(std::to_string(k));
        out.cell(acc.sharded.misses());
        out.cell(acc.missDelta());
        out.cell(acc.missRateDelta(), 6);
        out.cell(acc.relativeMissError(), 6);
        out.cell(std::string(acc.withinEpsilon() ? "yes" : "NO"));
    }
    emit(out, args.has("csv"));
    return 0;
}

int
cmdExportMap(const Args &args)
{
    const std::string workload = args.get("workload", "canneal");
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const std::string path = args.get(
        "out", workload + "." + scenarioName(scenario) + ".map");
    const SimOptions opts = optionsFrom(args);

    WorkloadSpec spec = findWorkload(workload);
    spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprint_bytes) * opts.footprint_scale);
    ScenarioParams params;
    params.footprint_pages = spec.footprintPages();
    params.seed = opts.seed;
    params.demand_run_pages = spec.demand_run_pages;
    params.eager_run_pages = spec.eager_run_pages;
    params.demand_churn = spec.demand_churn;
    params.map_tail_run_pages = spec.map_tail_run_pages;
    params.map_tail_fraction = spec.map_tail_fraction;
    const MemoryMap map = buildScenario(scenario, params);
    saveMapping(path, map);
    std::cout << "wrote " << map.chunks().size() << " chunks ("
              << map.mappedPages() << " pages) to " << path << "\n";
    return 0;
}

int
cmdInspectMap(const Args &args)
{
    if (args.positional().empty())
        ATLB_FATAL("inspect-map needs a mapping file argument");
    const MemoryMap map = loadMapping(args.positional()[0]);
    const Histogram hist = map.contiguityHistogram();
    const DistanceSelection sel = selectAnchorDistance(hist);

    Table table("mapping " + args.positional()[0],
                {"metric", "value"});
    const auto row = [&table](const std::string &k,
                              const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };
    row("chunks", std::to_string(map.chunks().size()));
    row("mapped pages", std::to_string(map.mappedPages()));
    row("smallest chunk", std::to_string(hist.minKey()) + " pages");
    row("largest chunk", std::to_string(hist.maxKey()) + " pages");
    row("median chunk (by pages)",
        std::to_string(hist.weightedQuantile(0.5)) + " pages");
    row("Algorithm 1 anchor distance", std::to_string(sel.distance));
    emit(table, args.has("csv"));
    return 0;
}

std::string
baseName(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string
hexAddr(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** Parse an address option accepting 0x-prefixed hex or decimal. */
std::uint64_t
addrArg(const Args &args, const std::string &key, std::uint64_t fallback)
{
    const std::string raw = args.get(key, "");
    if (raw.empty())
        return fallback;
    return std::strtoull(raw.c_str(), nullptr, 0);
}

int
cmdTraceImport(const Args &args)
{
    if (args.positional().size() < 3)
        ATLB_FATAL("usage: anchortlb trace import IN OUT "
                   "[--format=auto|plain|lackey|champsim] [--v1] "
                   "[--no-rebase] [--rebase-to=ADDR] "
                   "[--block-capacity=N]");
    const std::string in = args.positional()[1];
    const std::string out = args.positional()[2];

    ImportOptions opts;
    opts.format = parseTextTraceFormat(args.get("format", "auto"));
    // Rebase by default: the grid maps trace-driven footprints at
    // traceBaseVa(), and raw capture addresses rarely land there.
    opts.rebase = !args.has("no-rebase");
    opts.rebase_to = addrArg(args, "rebase-to", traceBaseVa().raw());

    ImportResult result;
    std::uint64_t out_bytes = 0;
    if (args.has("v1")) {
        TraceWriter writer(out);
        result = importTextTrace(in, opts, [&](const MemAccess &a) {
            writer.append(a);
        });
        writer.close();
        out_bytes = 16 + writer.written() * 8;
    } else {
        TraceV2Writer writer(out, args.getU64("block-capacity",
                                              traceV2DefaultBlockCapacity));
        result = importTextTrace(in, opts, [&](const MemAccess &a) {
            writer.append(a);
        });
        writer.close();
        out_bytes = 0; // read back below (index + trailer included)
    }
    if (out_bytes == 0)
        out_bytes = inspectTraceFile(out).file_bytes;

    Table table("import of " + baseName(in), {"metric", "value"});
    const auto row = [&table](const std::string &k, const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };
    row("format", textTraceFormatName(result.format));
    row("accesses", std::to_string(result.accesses));
    row("skipped lines", std::to_string(result.skipped));
    row("rebase shift", std::to_string(result.rebase_shift));
    row("min vaddr", hexAddr(result.min_vaddr));
    row("max vaddr", hexAddr(result.max_vaddr));
    row("output", baseName(out));
    row("output bytes", std::to_string(out_bytes));
    emit(table, args.has("csv"));
    return 0;
}

int
cmdTraceConvert(const Args &args)
{
    if (args.positional().size() < 3)
        ATLB_FATAL("usage: anchortlb trace convert IN OUT [--to=v1|v2] "
                   "[--block-capacity=N]");
    const std::string in = args.positional()[1];
    const std::string out = args.positional()[2];

    const TraceKind in_kind = sniffTraceKind(in);
    std::string to = args.get("to", in_kind == TraceKind::V1 ? "v2"
                                                             : "v1");
    if (to != "v1" && to != "v2")
        ATLB_FATAL("--to must be v1 or v2, not '{}'", to);

    const std::unique_ptr<TraceSource> source = openTraceFile(in);
    std::uint64_t count = 0;
    MemAccess batch[1024];
    std::size_t got;
    if (to == "v2") {
        TraceV2Writer writer(out, args.getU64("block-capacity",
                                              traceV2DefaultBlockCapacity));
        while ((got = source->fill(batch, 1024)) > 0)
            for (std::size_t i = 0; i < got; ++i)
                writer.append(batch[i]);
        writer.close();
        count = writer.written();
    } else {
        TraceWriter writer(out);
        while ((got = source->fill(batch, 1024)) > 0)
            for (std::size_t i = 0; i < got; ++i)
                writer.append(batch[i]);
        writer.close();
        count = writer.written();
    }
    const TraceFileInfo in_info = inspectTraceFile(in);
    const TraceFileInfo out_info = inspectTraceFile(out);
    std::cout << "converted " << count << " accesses: "
              << traceKindName(in_info.kind) << " (" << in_info.file_bytes
              << " bytes) -> " << traceKindName(out_info.kind) << " ("
              << out_info.file_bytes << " bytes)\n";
    return 0;
}

int
cmdTraceInfo(const Args &args)
{
    if (args.positional().size() < 2)
        ATLB_FATAL("usage: anchortlb trace info FILE [--profile|--json]");
    const std::string path = args.positional()[1];
    const TraceFileInfo info = inspectTraceFile(path);

    if (args.has("json")) {
        WorkloadProfiler profiler;
        const std::unique_ptr<TraceSource> source = openTraceFile(path);
        profiler.consume(*source);
        writeWorkloadProfileJson(std::cout, profiler.profile());
        return 0;
    }

    // Only the basename appears in the output so the golden harness can
    // pin it regardless of where the tree is checked out.
    Table table("trace " + baseName(path), {"metric", "value"});
    const auto row = [&table](const std::string &k, const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };
    row("format", traceKindName(info.kind));
    row("file bytes", std::to_string(info.file_bytes));
    row("accesses", std::to_string(info.accesses));
    row("bytes/access",
        info.accesses
            ? std::to_string(static_cast<double>(info.file_bytes) /
                             static_cast<double>(info.accesses))
            : std::string("-"));
    row("min vaddr", hexAddr(info.min_vaddr));
    row("max vaddr", hexAddr(info.max_vaddr));
    row("footprint pages",
        std::to_string(info.accesses
                           ? vpnOf(VirtAddr{info.max_vaddr}).raw() -
                                 vpnOf(VirtAddr{info.min_vaddr}).raw() + 1
                           : 0));
    if (info.kind == TraceKind::V2) {
        row("blocks", std::to_string(info.blocks));
        row("block capacity", std::to_string(info.block_capacity));
        // Per-block encoding report: which encoding the writer picked
        // per block, and how many bits each block spends per access
        // (payload bytes including the tag byte over its access
        // count). The histogram is power-of-two bucketed; only
        // occupied buckets print.
        TraceV2Source v2(path);
        std::uint64_t varint_blocks = 0;
        std::uint64_t packed_blocks = 0;
        std::uint64_t payload_bytes = 0;
        Log2Histogram bits_per_access(8);
        for (std::size_t b = 0; b < v2.blockCount(); ++b) {
            const TraceV2BlockStats s = v2.blockStats(b);
            if (s.encoding == traceV2EncodingPacked)
                ++packed_blocks;
            else
                ++varint_blocks;
            payload_bytes += s.bytes;
            bits_per_access.add(8 * s.bytes / s.count);
        }
        row("varint blocks", std::to_string(varint_blocks));
        row("bit-packed blocks", std::to_string(packed_blocks));
        if (info.accesses > 0) {
            row("payload bits/access",
                std::to_string(static_cast<double>(8 * payload_bytes) /
                               static_cast<double>(info.accesses)));
        }
        for (unsigned i = 0; i < bits_per_access.numBuckets(); ++i) {
            if (bits_per_access.bucket(i) == 0)
                continue;
            const std::uint64_t lo = i == 0 ? 0 : (1ULL << i);
            // The top bucket also absorbs clamped outliers.
            const std::string hi =
                i + 1 == bits_per_access.numBuckets()
                    ? "inf"
                    : std::to_string(1ULL << (i + 1));
            row("blocks at [" + std::to_string(lo) + ", " + hi +
                    ") bits/access",
                std::to_string(bits_per_access.bucket(i)));
        }
    }
    if (args.has("profile")) {
        WorkloadProfiler profiler;
        const std::unique_ptr<TraceSource> source = openTraceFile(path);
        profiler.consume(*source);
        const WorkloadProfile p = profiler.profile();
        row("unique pages", std::to_string(p.footprint_pages));
        row("same-page fraction",
            std::to_string(p.pages.same_page_fraction));
        row("contiguity chunks", std::to_string(p.contiguity.samples()));
        row("largest chunk",
            std::to_string(p.contiguity.maxKey()) + " pages");
        row("Algorithm 1 distance",
            std::to_string(p.anchor_distance.distance));
    }
    emit(table, args.has("csv"));
    return 0;
}

int
cmdTraceReplay(const Args &args)
{
    if (args.positional().size() < 2)
        ATLB_FATAL("usage: anchortlb trace replay FILE [--scenario=NAME] "
                   "[--scheme=NAME] [--distance=N] [--shards=K]");
    const std::string workload = "trace:" + args.positional()[1];
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));

    // Route through ExperimentContext so a replayed capture exercises
    // the exact grid path (mapping, page tables, sharding) a
    // trace-driven experiment cell uses.
    ExperimentContext ctx(optionsFrom(args));
    const SimResult base = ctx.run(workload, scenario, Scheme::Base);

    std::vector<Scheme> schemes;
    if (args.has("scheme"))
        schemes.push_back(schemeFromName(args.get("scheme", "")));
    else
        schemes.assign(std::begin(allSchemes), std::end(allSchemes));

    Table table("trace replay " + baseName(args.positional()[1]) + " / " +
                    scenarioName(scenario),
                {"scheme", "accesses", "walks", "relative%", "CPI",
                 "anchor dist"});
    for (const Scheme s : schemes) {
        std::optional<std::uint64_t> dist;
        if (args.has("distance") && s == Scheme::Anchor)
            dist = args.getU64("distance", 0);
        const SimResult r = ctx.run(workload, scenario, s, dist);
        table.beginRow();
        table.cell(r.scheme);
        table.cell(r.stats.accesses);
        table.cell(r.misses());
        table.cellPercent(relativeMisses(r.misses(), base.misses()));
        table.cell(r.translationCpi(), 4);
        table.cell(r.anchor_distance
                       ? std::to_string(r.anchor_distance)
                       : std::string("-"));
    }
    emit(table, args.has("csv"));
    return 0;
}

int
cmdMultiProcess(const Args &args)
{
    const ScenarioKind scenario =
        scenarioFromName(args.get("scenario", "medium"));
    const bool csv = args.has("csv");

    // Comma-separated workload list; each becomes one process.
    std::vector<ProcessSpec> procs;
    std::stringstream names(args.get("workloads", "canneal,milc"));
    for (std::string name; std::getline(names, name, ',');)
        if (!name.empty())
            procs.push_back({name, scenario});
    if (procs.empty())
        ATLB_FATAL("--workloads produced no processes");

    MultiProcessOptions opts;
    opts.total_accesses = args.getU64("accesses", opts.total_accesses);
    opts.quantum_accesses = args.getU64("quantum", opts.quantum_accesses);
    opts.seed = args.getU64("seed", opts.seed);
    opts.footprint_scale = args.getDouble("scale", opts.footprint_scale);
    opts.remap_every_quanta =
        args.getU64("remap-every", opts.remap_every_quanta);
    opts.shared_cores = static_cast<unsigned>(
        args.getU64("shared-cores", opts.shared_cores));
    const std::string policy = args.get("policy", "flush");
    if (policy == "asid")
        opts.policy = SwitchPolicy::Asid;
    else if (policy != "flush")
        ATLB_FATAL("unknown switch policy '{}' (try: flush asid)", policy);
    if (args.has("weights")) {
        std::stringstream ws(args.get("weights", ""));
        for (std::string w; std::getline(ws, w, ',');)
            if (!w.empty())
                opts.weights.push_back(
                    static_cast<unsigned>(std::stoull(w)));
    }

    std::vector<Scheme> schemes;
    if (args.has("scheme"))
        schemes.push_back(schemeFromName(args.get("scheme", "")));
    else
        schemes.assign(std::begin(allSchemes), std::end(allSchemes));

    Table table("multi-process / " + std::string(scenarioName(scenario)) +
                    " / " + policy,
                {"scheme", "walks", "hit%", "switches", "remaps",
                 "shootdown kcyc", "charged CPI"});
    for (const Scheme s : schemes) {
        if (s == Scheme::AnchorIdeal)
            continue; // the oracle sweep has no multi-process analogue
        const MultiProcessResult r = runMultiProcess(s, procs, opts);
        table.beginRow();
        table.cell(std::string(schemeName(s)));
        table.cell(r.stats.page_walks);
        table.cellPercent(r.hitRate());
        table.cell(r.context_switches);
        table.cell(r.remap_epochs);
        table.cell(r.stats.shootdown_cycles / 1000);
        table.cell(r.chargedCpi(), 4);
    }
    emit(table, csv);
    return 0;
}

int
cmdTrace(const Args &args)
{
    if (args.positional().empty())
        ATLB_FATAL("usage: anchortlb trace import|convert|info|replay ...");
    const std::string &sub = args.positional()[0];
    if (sub == "import")
        return cmdTraceImport(args);
    if (sub == "convert")
        return cmdTraceConvert(args);
    if (sub == "info")
        return cmdTraceInfo(args);
    if (sub == "replay")
        return cmdTraceReplay(args);
    ATLB_FATAL("unknown trace subcommand '{}' (try: import convert info "
               "replay)",
               sub);
}

constexpr const char *defaultServeSocket = "/tmp/anchortlb.sock";
constexpr const char *defaultStorePath = "anchortlb.results";

/** Set by SIGINT/SIGTERM; polled by the serve loop. */
volatile std::sig_atomic_t g_serve_stop = 0;

void
serveSignalHandler(int)
{
    g_serve_stop = 1;
}

void
printCounters(const std::string &title,
              const std::vector<std::pair<std::string, std::uint64_t>>
                  &counters,
              bool csv)
{
    Table table(title, {"counter", "value"});
    for (const auto &[name, value] : counters) {
        table.beginRow();
        table.cell(name);
        table.cell(value);
    }
    emit(table, csv);
}

/** Append @p hist's summary + nonzero buckets as "<name>_*" rows. */
void
appendHistogramCounters(
    std::vector<std::pair<std::string, std::uint64_t>> &rows,
    const std::string &name, const Log2Histogram &hist)
{
    rows.emplace_back(name + "_count", hist.samples());
    rows.emplace_back(name + "_sum", hist.sum());
    rows.emplace_back(name + "_p50", hist.quantile(0.5));
    rows.emplace_back(name + "_p99", hist.quantile(0.99));
    rows.emplace_back(name + "_max", hist.maxValue());
    for (unsigned i = 0; i < hist.numBuckets(); ++i) {
        if (hist.bucket(i) == 0)
            continue;
        rows.emplace_back(name + "_le_" +
                              std::to_string(hist.bucketUpperBound(i)),
                          hist.bucket(i));
    }
}

std::vector<std::pair<std::string, std::uint64_t>>
serveSummaryCounters(const SweepServer &server)
{
    const ServerCounters c = server.counters();
    const CellScheduler::Stats ss = server.schedulerStats();
    const ResultStore::Counters sc = server.storeCounters();
    const ResultStore::Info si = server.storeInfo();
    std::vector<std::pair<std::string, std::uint64_t>> rows = {
        {"connections", c.connections},
        {"requests", c.requests},
        {"bad_requests", c.bad_requests},
        {"cells", c.cells},
        {"hits", c.hits},
        {"dedups", c.dedups},
        {"simulations", c.simulations},
        {"cell_errors", c.cell_errors},
        {"queue_peak", c.queue_peak},
        {"admission_stalls", c.admission_stalls},
        {"sched_jobs", ss.enqueued},
        {"sched_pair_builds", ss.pair_builds},
        {"sched_pair_reuses", ss.pair_reuses},
        {"sched_pairs_cached", ss.pairs_cached},
        {"store_lookups", sc.lookups},
        {"store_hits", sc.hits},
        {"store_appends", sc.appends},
        {"store_corrupt_dropped", sc.corrupt_dropped},
        {"store_live_cells", si.live_cells},
        {"store_records", si.records},
        {"store_file_bytes", si.file_bytes},
    };
    appendHistogramCounters(rows, "request_wall_us", c.request_wall_us);
    appendHistogramCounters(rows, "queue_wait_us", c.queue_wait_us);
    return rows;
}

int
cmdServeStop(const Args &args)
{
    const std::string socket = args.get("socket", defaultServeSocket);
    ServeClient client;
    std::string error;
    if (!client.connect(socket, &error))
        ATLB_FATAL("serve stop: {}", error);
    SweepRequest request;
    request.op = WireOp::Shutdown;
    SweepResponse response;
    if (!client.roundTrip(request, response, &error))
        ATLB_FATAL("serve stop: {}", error);
    printCounters("server shut down; final counters", response.counters,
                  args.has("csv"));
    return response.ok ? 0 : 1;
}

int
cmdServe(const Args &args)
{
    if (!args.positional().empty()) {
        if (args.positional()[0] == "stop")
            return cmdServeStop(args);
        ATLB_FATAL("unknown serve subcommand '{}' (try: serve, "
                   "serve stop)",
                   args.positional()[0]);
    }

    ServeOptions options;
    options.socket_path = args.get("socket", defaultServeSocket);
    options.store_path = args.get("store", defaultStorePath);
    options.base = optionsFrom(args);
    options.max_queue_cells = static_cast<std::size_t>(
        args.getU64("queue", options.max_queue_cells));
    options.max_pairs = static_cast<std::size_t>(
        args.getU64("pairs", options.max_pairs));

    SweepServer server(options);
    std::string error;
    if (!server.start(&error))
        ATLB_FATAL("serve: {}", error);

    // ^C / SIGTERM stop the accept loop; the handler may only write a
    // sig_atomic_t, so the server polls the flag.
    server.watchStopFlag(&g_serve_stop);
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    std::cout << "anchortlb serve: listening on " << options.socket_path
              << ", store " << options.store_path << "\n"
              << std::flush;
    server.run();
    printCounters("serve summary", serveSummaryCounters(server),
                  args.has("csv"));
    return 0;
}

/** Comma-separated list option -> vector (empty for absent). */
std::vector<std::string>
listArg(const Args &args, const std::string &key,
        const std::string &fallback)
{
    std::vector<std::string> out;
    std::stringstream ss(args.get(key, fallback));
    for (std::string item; std::getline(ss, item, ',');)
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
cmdSubmit(const Args &args, WireOp op)
{
    const std::string socket = args.get("socket", defaultServeSocket);
    const bool csv = args.has("csv");

    SweepRequest request;
    request.op = op;
    // Knob overrides travel only when given explicitly, so by default
    // a client addresses the server's own option set.
    if (args.has("accesses"))
        request.accesses = args.getU64("accesses", 0);
    if (args.has("seed"))
        request.seed = args.getU64("seed", 0);
    if (args.has("scale"))
        request.scale = args.getDouble("scale", 1.0);
    if (args.has("shards"))
        request.shards = args.getU64("shards", 1);
    if (args.has("warmup"))
        request.warmup = args.getU64("warmup", 0);

    std::vector<Scheme> schemes;
    if (args.has("schemes")) {
        for (const std::string &name : listArg(args, "schemes", ""))
            schemes.push_back(schemeFromName(name));
    } else {
        schemes.assign(std::begin(allSchemes), std::end(allSchemes));
    }
    for (const std::string &workload :
         listArg(args, "workloads", "canneal")) {
        for (const std::string &scenario :
             listArg(args, "scenarios", "medium")) {
            for (const Scheme scheme : schemes) {
                CellRequest cell;
                cell.workload = workload;
                cell.scenario = scenarioFromName(scenario);
                cell.scheme = scheme;
                if (args.has("distance") && scheme == Scheme::Anchor)
                    cell.distance = args.getU64("distance", 0);
                request.cells.push_back(std::move(cell));
            }
        }
    }

    ServeClient client;
    std::string error;
    if (!client.connect(socket, &error))
        ATLB_FATAL("{}: {}", wireOpName(op), error);
    SweepResponse response;
    if (!client.roundTrip(request, response, &error))
        ATLB_FATAL("{}: {}", wireOpName(op), error);
    if (!response.ok)
        ATLB_FATAL("{}: server refused: {}", wireOpName(op),
                   response.error);
    if (response.cells.size() != request.cells.size())
        ATLB_FATAL("{}: server answered {} cells for {} requested",
                   wireOpName(op), response.cells.size(),
                   request.cells.size());

    Table table(std::string(wireOpName(op)) + " via " + socket,
                {"workload", "scenario", "scheme", "status", "walks",
                 "CPI", "anchor dist"});
    for (std::size_t i = 0; i < response.cells.size(); ++i) {
        const CellReply &reply = response.cells[i];
        const CellRequest &cell = request.cells[i];
        table.beginRow();
        table.cell(cell.workload);
        table.cell(std::string(scenarioName(cell.scenario)));
        table.cell(std::string(schemeName(cell.scheme)));
        table.cell(reply.error.empty()
                       ? std::string(cellStatusName(reply.status))
                       : cellStatusName(reply.status) +
                             (": " + reply.error));
        if (reply.status == CellStatus::Miss ||
            reply.status == CellStatus::Error) {
            table.cell(std::string("-"));
            table.cell(std::string("-"));
            table.cell(std::string("-"));
            continue;
        }
        table.cell(reply.result.misses());
        table.cell(reply.result.translationCpi(), 4);
        table.cell(reply.result.anchor_distance
                       ? std::to_string(reply.result.anchor_distance)
                       : std::string("-"));
    }
    emit(table, csv);
    printCounters("server counters", response.counters, csv);

    int exit_code = 0;
    for (const CellReply &reply : response.cells)
        if (reply.status == CellStatus::Error)
            exit_code = 1;
    return exit_code;
}

int
cmdStore(const Args &args)
{
    if (args.positional().empty())
        ATLB_FATAL("usage: anchortlb store info|gc [FILE]");
    const std::string &sub = args.positional()[0];
    const std::string path = args.positional().size() > 1
                                 ? args.positional()[1]
                                 : std::string(defaultStorePath);
    if (sub == "info") {
        ResultStore store(path);
        const ResultStore::Info info = store.info();
        const ResultStore::Counters counters = store.counters();
        printCounters("store " + path,
                      {{"file_bytes", info.file_bytes},
                       {"live_cells", info.live_cells},
                       {"records", info.records},
                       {"corrupt_dropped", counters.corrupt_dropped}},
                      args.has("csv"));
        return 0;
    }
    if (sub == "gc") {
        ResultStore store(path);
        const std::uint64_t evicted = store.gc();
        const ResultStore::Info info = store.info();
        printCounters("store gc " + path,
                      {{"evicted_records", evicted},
                       {"live_cells", info.live_cells},
                       {"file_bytes", info.file_bytes}},
                      args.has("csv"));
        return 0;
    }
    ATLB_FATAL("unknown store subcommand '{}' (try: info gc)", sub);
}

int
cmdHelp()
{
    std::cout <<
        R"(anchortlb - hybrid TLB coalescing simulator (ISCA'17 reproduction)

usage: anchortlb <command> [options]

commands:
  list                 show catalog workloads, scenarios and schemes
  run                  simulate one workload/scenario across schemes
      --workload=NAME --scenario=NAME [--scheme=NAME] [--distance=N]
  sweep-distance       anchor misses at every candidate distance
      --workload=NAME --scenario=NAME
  gen-trace            write a synthetic access trace
      --workload=NAME [--out=FILE]
  replay FILE          drive a trace file through one scheme
      --workload=NAME --scenario=NAME --scheme=NAME [--distance=N]
  profile [FILE]       page-level profile of a trace file or a
                       synthetic workload (--workload=NAME); --json
                       emits the full workload profile as JSON
  trace import IN OUT  import a text trace (ChampSim / valgrind lackey /
                       plain "R|W addr" lines, auto-detected) to the
                       compressed ATLBTRC2 format (--v1 for ATLBTRC1);
                       rebases to the simulated region base by default
                       (--no-rebase / --rebase-to=ADDR)
      [--format=auto|plain|lackey|champsim] [--block-capacity=N]
  trace convert IN OUT convert between ATLBTRC1 and ATLBTRC2
      [--to=v1|v2] [--block-capacity=N]
  trace info FILE      metadata of a binary trace file; --profile adds
                       footprint/contiguity stats, --json the profile
  trace replay FILE    replay a binary trace through the experiment
                       grid (same path as trace-driven cells)
      [--scenario=NAME] [--scheme=NAME] [--distance=N] [--shards=K]
  shard-check          sharded-vs-serial accuracy report for one cell
      --workload=NAME --scenario=NAME --scheme=NAME [--shards=K]
  multiprocess         weighted round-robin multi-process run; compares
                       schemes under a context-switch policy
      --workloads=A,B[,C...] [--scenario=NAME] [--scheme=NAME]
      [--policy=flush|asid] [--quantum=N] [--weights=1,2,...]
      [--remap-every=Q] [--shared-cores=N]
  export-map           write a scenario's VA->PA mapping to a text file
      --workload=NAME --scenario=NAME [--out=FILE]
  inspect-map FILE     chunk statistics + Algorithm 1 pick for a mapping
  serve                sweep service: answer submit/query requests over
                       a unix socket, backed by a content-addressed
                       persistent result store (^C or `serve stop` for
                       a clean shutdown with a counter summary)
      [--socket=PATH] [--store=FILE] [--queue=N] [--pairs=N]
                       (--queue bounds cells admitted across requests;
                       --pairs sizes the shared pair-state cache)
  serve stop           ask a running server to shut down
      [--socket=PATH]
  submit               resolve a cell grid via the service, simulating
                       store misses on the server
      --workloads=A[,B...] [--scenarios=X[,Y...]] [--schemes=S[,T...]]
      [--socket=PATH] [--distance=N] (+ common sweep options below)
  query                like submit, but never simulates: store misses
                       report status "miss"
  store info [FILE]    result-store shape (cells, records, bytes)
  store gc [FILE]      compact the store, dropping superseded records
  help                 this text

common options:
  --accesses=N         trace length (default 2000000 or $ANCHORTLB_ACCESSES)
  --seed=N             RNG seed (default 42)
  --scale=F            footprint scale in (0,1]
  --shards=K           within-cell shards (default 1 = exact serial,
                       or $ANCHORTLB_SHARDS; K>1 is approximate)
  --warmup=N           per-shard warmup accesses (default 32768)
  --csv                CSV output instead of ASCII tables

scheme names: base thp cluster cluster-2mb rmm anchor ideal
scenario names: demand eager low medium high max
)";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string cmd = argv[1];
    const Args args(argc, argv);
    if (cmd == "list")
        return cmdList(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep-distance")
        return cmdSweepDistance(args);
    if (cmd == "gen-trace")
        return cmdGenTrace(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "shard-check")
        return cmdShardCheck(args);
    if (cmd == "multiprocess")
        return cmdMultiProcess(args);
    if (cmd == "export-map")
        return cmdExportMap(args);
    if (cmd == "inspect-map")
        return cmdInspectMap(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "submit")
        return cmdSubmit(args, WireOp::Submit);
    if (cmd == "query")
        return cmdSubmit(args, WireOp::Query);
    if (cmd == "store")
        return cmdStore(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return cmdHelp();
    std::cerr << "unknown command '" << cmd << "'\n";
    cmdHelp();
    return 1;
}
