/**
 * @file
 * anchortlb_lint: domain-rule checker for the anchortlb tree.
 *
 * Enforces the project rules that generic static analysis cannot
 * express (see DESIGN.md, "Lint rule catalog"):
 *
 *   raw-u64-api    public translate/lookup/insert signatures in
 *                  headers must take the strong address-space types
 *                  (Vpn/Ppn/VirtAddr/TlbKey/...), never raw
 *                  std::uint64_t.
 *   page-shift     no bare `<<`/`>>` page arithmetic on address-like
 *                  operands outside common/bitops.hh and
 *                  common/types.hh; use the typed helpers
 *                  (vpnOf/vaOf/pageKey/alignDown/...) instead.
 *   dcheck-effect  ANCHOR_DCHECK arguments must be side-effect free:
 *                  the macro compiles out in release builds, so any
 *                  mutation inside it changes behaviour across build
 *                  modes.
 *   kernel-stats   inside runBatchKernel bodies, stats may only be
 *                  flushed at the top level of the function body
 *                  (the register-resident counter pattern); per-access
 *                  stats mutation inside the loop defeats the kernel,
 *                  and the L2 lambdas passed to it must not touch
 *                  stats at all.
 *
 * Escape hatch: a `// lint-allow: <rule>` comment on the offending
 * line (or the line above) suppresses that rule there. Every allow is
 * greppable, so exceptions stay auditable.
 *
 * Deliberately token-level: the build image carries no libclang, and
 * the four rules only need comment-aware tokenization plus brace
 * matching. Driven either by explicit file arguments or by a
 * compile_commands.json (-p <build-dir>), from which it lints every
 * in-repo translation unit plus all headers in src/.
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** One lexed token with its source line. */
struct Token
{
    std::string text;
    std::size_t line = 0;
};

struct FileText
{
    std::vector<Token> tokens;
    /** Lines carrying `lint-allow: <rule>` comments, per rule. */
    std::set<std::pair<std::string, std::size_t>> allows;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Tokenize C++ source: skips comments and string/char literals but
 * harvests `lint-allow: rule` markers from comments. Multi-character
 * operators that the rules care about (<<, >>, ++, --, compound
 * assignment, ==, !=, <=, >=, ->) are kept as single tokens.
 */
FileText
lex(const std::string &src)
{
    FileText out;
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto harvestAllow = [&out](const std::string &comment,
                               std::size_t at_line) {
        const std::string needle = "lint-allow:";
        std::size_t pos = comment.find(needle);
        while (pos != std::string::npos) {
            std::size_t p = pos + needle.size();
            while (p < comment.size() &&
                   std::isspace(static_cast<unsigned char>(comment[p])))
                ++p;
            std::string rule;
            while (p < comment.size() &&
                   (isIdentChar(comment[p]) || comment[p] == '-'))
                rule += comment[p++];
            if (!rule.empty())
                out.allows.emplace(rule, at_line);
            pos = comment.find(needle, p);
        }
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && src[j] != '\n')
                ++j;
            harvestAllow(src.substr(i, j - i), line);
            i = j;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const std::size_t start_line = line;
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            harvestAllow(src.substr(i, j + 2 - i), start_line);
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }
        // String / char literal (no raw-string support needed here).
        if (c == '"' || c == '\'') {
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                else if (src[j] == '\n')
                    ++line;
                ++j;
            }
            out.tokens.push_back({std::string(1, c) + "...", line});
            i = j + 1;
            continue;
        }
        // Identifier / number.
        if (isIdentChar(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(src[j]))
                ++j;
            out.tokens.push_back({src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Multi-char operators the rules inspect.
        static const char *two_or_three[] = {
            "<<=", ">>=", "<<", ">>", "++", "--", "==", "!=", "<=",
            ">=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            "->", "::"};
        bool matched = false;
        for (const char *op : two_or_three) {
            const std::size_t len = std::char_traits<char>::length(op);
            if (src.compare(i, len, op) == 0) {
                out.tokens.push_back({op, line});
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return out;
}

bool
allowed(const FileText &f, const std::string &rule, std::size_t line)
{
    return f.allows.count({rule, line}) != 0 ||
           (line > 0 && f.allows.count({rule, line - 1}) != 0);
}

/** Case-insensitive "identifier smells like an address/page number". */
bool
addressLike(const std::string &ident)
{
    std::string low;
    low.reserve(ident.size());
    for (char c : ident)
        low += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (const char *needle :
         {"vpn", "ppn", "pfn", "vaddr", "paddr", "gpa", "frame",
          "page_num", "tlbkey"})
        if (low.find(needle) != std::string::npos)
            return true;
    return low == "key" || low == "addr" || low == "va" || low == "pa";
}

/**
 * Identifier names a page-size shift (pageShift, hugeShift,
 * giantShift). PTE bit-field offsets (contigShift and friends) are
 * field packing, not page arithmetic, and stay out of scope.
 */
bool
pageShiftLike(const std::string &ident)
{
    std::string low;
    for (char c : ident)
        low += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (low.find("shift") == std::string::npos &&
        low.find("log2") == std::string::npos)
        return false;
    if (low.find("contig") != std::string::npos)
        return false;
    return low.find("page") != std::string::npos ||
           low.find("huge") != std::string::npos ||
           low.find("giant") != std::string::npos ||
           low.find("anchor") != std::string::npos;
}

bool
isIntLiteral(const std::string &t)
{
    return !t.empty() &&
           std::isdigit(static_cast<unsigned char>(t[0])) != 0;
}

bool
isIdent(const std::string &t)
{
    return !t.empty() && isIdentChar(t[0]) &&
           std::isdigit(static_cast<unsigned char>(t[0])) == 0;
}

/** Find the matching closer for tokens[open] ∈ {(,{,[}. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open)
{
    const std::string &o = toks[open].text;
    const std::string c = o == "(" ? ")" : (o == "{" ? "}" : "]");
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == o)
            ++depth;
        else if (toks[i].text == c && --depth == 0)
            return i;
    }
    return toks.size();
}

/**
 * Rule raw-u64-api: in headers, a function named translate/lookup/
 * insert — one of the shootdown crossings invalidatePage/
 * invalidateAsid — or one of the store/serve surface names store/
 * get/put/invalidate — whose parameter list mentions uint64_t must
 * use the strong types (CellKey for result-store APIs). Calls
 * (preceded by `.`, `->`) are skipped; declarations and inline
 * definitions are checked.
 */
void
checkRawU64Api(const std::string &path, const FileText &f,
               std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        const std::string &name = t[i].text;
        if (name != "translate" && name != "lookup" && name != "insert" &&
            name != "invalidatePage" && name != "invalidateAsid" &&
            name != "store" && name != "get" && name != "put" &&
            name != "invalidate")
            continue;
        if (t[i + 1].text != "(")
            continue;
        if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))
            continue; // member call, not a declaration
        const std::size_t close = matchDelim(t, i + 1);
        // Declarations/definitions are followed by ;, {, const, etc.
        // A call is followed by an operator or another call — but a
        // call can also end a statement; the uint64_t test below only
        // fires on parameter lists, where a type name appears.
        bool has_u64 = false;
        for (std::size_t j = i + 2; j < close; ++j)
            if (t[j].text == "uint64_t")
                has_u64 = true;
        if (!has_u64)
            continue;
        if (allowed(f, "raw-u64-api", t[i].line))
            continue;
        out.push_back(
            {path, t[i].line, "raw-u64-api",
             "public '" + name +
                 "' signature takes raw std::uint64_t; use the strong "
                 "address types (Vpn/Ppn/VirtAddr/TlbKey/PageCount/"
                 "Asid/CellKey)"});
    }
}

/**
 * Rule page-shift: `A << B` / `A >> B` where A is an address-like
 * identifier chain and B is an integer literal or a shift-amount
 * identifier — or B itself is a named page shift. Page arithmetic
 * belongs in common/bitops.hh and common/types.hh.
 */
void
checkPageShift(const std::string &path, const FileText &f,
               std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        if (t[i].text != "<<" && t[i].text != ">>")
            continue;
        // Right operand.
        const std::string &rhs = t[i + 1].text;
        const bool rhs_shifty =
            isIntLiteral(rhs) || (isIdent(rhs) && pageShiftLike(rhs));
        const bool rhs_generic_shift =
            isIdent(rhs) && rhs.find("shift") != std::string::npos;
        if (!rhs_shifty && !rhs_generic_shift)
            continue;
        // Left operand: nearest identifier, looking through ) and
        // .raw() style member chains.
        std::size_t j = i - 1;
        while (j > 0 &&
               (t[j].text == ")" || t[j].text == "(" ||
                t[j].text == "." || t[j].text == "->" ||
                t[j].text == "raw"))
            --j;
        const std::string &lhs = t[j].text;
        const bool lhs_addressy = isIdent(lhs) && addressLike(lhs);
        const bool rhs_named_shift = isIdent(rhs) && pageShiftLike(rhs);
        // Fire when an address-like value meets any shift, or when a
        // named page-size shift appears regardless of the left side.
        if (!(lhs_addressy && (rhs_shifty || rhs_generic_shift)) &&
            !rhs_named_shift)
            continue;
        if (allowed(f, "page-shift", t[i].line))
            continue;
        out.push_back({path, t[i].line, "page-shift",
                       "bare '" + lhs + " " + t[i].text + " " + rhs +
                           "' page arithmetic; use the typed helpers "
                           "in common/types.hh or common/bitops.hh"});
    }
}

/**
 * Rule dcheck-effect: ANCHOR_DCHECK compiles out in release builds,
 * so its argument expression must not mutate state.
 */
void
checkDcheckEffect(const std::string &path, const FileText &f,
                  std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].text != "ANCHOR_DCHECK" || t[i + 1].text != "(")
            continue;
        const std::size_t close = matchDelim(t, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
            const std::string &op = t[j].text;
            const bool mutating =
                op == "++" || op == "--" || op == "+=" || op == "-=" ||
                op == "*=" || op == "/=" || op == "%=" || op == "&=" ||
                op == "|=" || op == "^=" || op == "<<=" || op == ">>=" ||
                (op == "=" && j > i + 2);
            if (!mutating)
                continue;
            if (allowed(f, "dcheck-effect", t[j].line))
                continue;
            out.push_back({path, t[j].line, "dcheck-effect",
                           "side effect ('" + op +
                               "') inside ANCHOR_DCHECK; the macro "
                               "compiles out in release builds"});
            break;
        }
    }
}

/**
 * Rule kernel-stats: in the runBatchKernel definition, stats_ may be
 * touched only at the top level of the function body (the post-loop
 * flush of register-resident counters); in lambdas passed to
 * runBatchKernel call sites, stats_ may not be touched at all.
 */
void
checkKernelStats(const std::string &path, const FileText &f,
                 std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].text != "runBatchKernel" || t[i + 1].text != "(")
            continue;
        const std::size_t close = matchDelim(t, i + 1);
        if (close >= t.size())
            continue;
        // Definition: argument list followed by the function body.
        std::size_t after = close + 1;
        if (after < t.size() && t[after].text == "{") {
            const std::size_t body_end = matchDelim(t, after);
            int depth = 0;
            for (std::size_t j = after; j < body_end; ++j) {
                if (t[j].text == "{")
                    ++depth;
                else if (t[j].text == "}")
                    --depth;
                else if (t[j].text == "stats_" && depth > 1) {
                    if (allowed(f, "kernel-stats", t[j].line))
                        continue;
                    out.push_back(
                        {path, t[j].line, "kernel-stats",
                         "stats_ touched inside a nested block of "
                         "runBatchKernel; accumulate in locals and "
                         "flush once at the end of the body"});
                }
            }
        } else {
            // Call site: no stats_ anywhere in the argument lambdas.
            for (std::size_t j = i + 2; j < close; ++j) {
                if (t[j].text != "stats_")
                    continue;
                if (allowed(f, "kernel-stats", t[j].line))
                    continue;
                out.push_back({path, t[j].line, "kernel-stats",
                               "stats_ touched in an L2 lambda passed "
                               "to runBatchKernel; the kernel owns all "
                               "stats accounting"});
            }
        }
    }
}

/** Strip a `.lintfix` suffix so test fixtures classify naturally. */
std::string
effectiveName(const std::string &path)
{
    const std::string suffix = ".lintfix";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return path.substr(0, path.size() - suffix.size());
    return path;
}

bool
endsWith(const std::string &s, const std::string &tail)
{
    return s.size() >= tail.size() &&
           s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

bool
lintFile(const std::string &path, std::vector<Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "anchortlb_lint: cannot read " << path << "\n";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const FileText f = lex(ss.str());

    const std::string name = effectiveName(path);
    const bool is_header = endsWith(name, ".hh");
    const bool is_bitops = endsWith(name, "common/bitops.hh") ||
                           endsWith(name, "common/types.hh");

    if (is_header && !is_bitops)
        checkRawU64Api(path, f, out);
    if (!is_bitops)
        checkPageShift(path, f, out);
    checkDcheckEffect(path, f, out);
    checkKernelStats(path, f, out);
    return true;
}

/**
 * Extract in-repo source files from compile_commands.json with a
 * minimal scan (entries are `"file": "<path>"`), then add every
 * header under the repo's src/ tree.
 */
std::vector<std::string>
filesFromCompileCommands(const std::string &build_dir)
{
    std::vector<std::string> files;
    const fs::path cc = fs::path(build_dir) / "compile_commands.json";
    std::ifstream in(cc);
    if (!in) {
        std::cerr << "anchortlb_lint: cannot read " << cc.string()
                  << "\n";
        return files;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::set<std::string> seen;
    fs::path repo_src;
    const std::string key = "\"file\"";
    std::size_t pos = text.find(key);
    while (pos != std::string::npos) {
        std::size_t q1 = text.find('"', pos + key.size() + 1);
        if (q1 == std::string::npos)
            break;
        std::size_t q2 = text.find('"', q1 + 1);
        if (q2 == std::string::npos)
            break;
        const std::string file = text.substr(q1 + 1, q2 - q1 - 1);
        // Only lint in-repo translation units, not fetched deps.
        if (file.find("_deps") == std::string::npos &&
            (file.find("/src/") != std::string::npos ||
             file.find("/bench/") != std::string::npos ||
             file.find("/tools/") != std::string::npos ||
             file.find("/examples/") != std::string::npos)) {
            if (seen.insert(file).second)
                files.push_back(file);
            if (repo_src.empty()) {
                const std::size_t s = file.find("/src/");
                if (s != std::string::npos)
                    repo_src = file.substr(0, s + 4);
            }
        }
        pos = text.find(key, q2);
    }
    if (!repo_src.empty() && fs::exists(repo_src)) {
        for (const auto &e : fs::recursive_directory_iterator(repo_src))
            if (e.is_regular_file() &&
                e.path().extension() == ".hh" &&
                seen.insert(e.path().string()).second)
                files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    bool gha = false;
    std::string build_dir;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gha") {
            gha = true;
        } else if (arg == "-p" && i + 1 < argc) {
            build_dir = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            std::cout
                << "usage: anchortlb_lint [--gha] [-p <build-dir>] "
                   "[files...]\n"
                   "rules: raw-u64-api page-shift dcheck-effect "
                   "kernel-stats\n"
                   "suppress with '// lint-allow: <rule>' on or above "
                   "the offending line\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "anchortlb_lint: unknown option " << arg
                      << "\n";
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (!build_dir.empty()) {
        const std::vector<std::string> discovered =
            filesFromCompileCommands(build_dir);
        files.insert(files.end(), discovered.begin(), discovered.end());
    }
    if (files.empty()) {
        std::cerr << "anchortlb_lint: no input files (pass paths or "
                     "-p <build-dir>)\n";
        return 2;
    }

    std::vector<Finding> findings;
    bool io_ok = true;
    for (const std::string &f : files)
        io_ok = lintFile(f, findings) && io_ok;

    for (const Finding &f : findings) {
        std::cout << f.file << ":" << f.line << ": error: [" << f.rule
                  << "] " << f.message << "\n";
        if (gha)
            std::cout << "::error file=" << f.file << ",line=" << f.line
                      << "::[" << f.rule << "] " << f.message << "\n";
    }
    if (!io_ok)
        return 2;
    if (!findings.empty()) {
        std::cout << "anchortlb_lint: " << findings.size()
                  << " finding(s) in " << files.size() << " file(s)\n";
        return 1;
    }
    return 0;
}
